package micro

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

func newM(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmbedGathersAcrossTables(t *testing.T) {
	m := newM(t)
	inst, err := newEmbed(m, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	e := inst.(*embed)
	start := m.Counters()
	e.Run(50_000)
	d := perf.Delta(start, m.Counters())
	acc := d.Get(perf.AllLoads) + d.Get(perf.AllStores)
	if acc < 50_000 {
		t.Errorf("embed ran %d accesses", acc)
	}
	// Accesses per instruction should be well below 1 (dense layer work).
	met := perf.Compute(d)
	if met.Eq1.AccessesPerInstruction > 0.8 {
		t.Errorf("embed accesses/instr = %.2f, want dense-layer dilution", met.Eq1.AccessesPerInstruction)
	}
}

func TestAllRegistered(t *testing.T) {
	for _, n := range []string{"gups-rand", "btree-rand", "hashjoin-rand", "embed-rand"} {
		spec, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Suite != "micro" {
			t.Errorf("%s suite = %q", n, spec.Suite)
		}
	}
}

func TestGUPSUpdatesMatchReference(t *testing.T) {
	m := newM(t)
	inst, err := newGUPS(m, 20) // 1MB table
	if err != nil {
		t.Fatal(err)
	}
	g := inst.(*gups)
	// Host reference model of the same update stream.
	words := g.table.Len()
	ref := make([]uint64, words)
	for i := range ref {
		ref[i] = uint64(i)
	}
	x := uint64(0x2545F4914F6CDD1D)
	nextRef := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	g.Run(30_000)
	// Replay the same number of updates on the host model. Each GUPS
	// iteration retires 2 accesses (load+store).
	updates := m.Accesses() / 2
	for i := uint64(0); i < updates; i++ {
		r := nextRef()
		ref[r%words] ^= r
	}
	for i := uint64(0); i < words; i += 97 {
		if got := g.table.Peek(i); got != ref[i] {
			t.Fatalf("table[%d] = %#x, reference %#x", i, got, ref[i])
		}
	}
}

func TestGUPSIsTranslationIntensive(t *testing.T) {
	m := newM(t)
	inst, err := newGUPS(m, 26) // 64MB
	if err != nil {
		t.Fatal(err)
	}
	start := m.Counters()
	inst.Run(60_000)
	met := perf.Compute(perf.Delta(start, m.Counters()))
	if met.TLBMissesPerKiloAccess < 300 {
		t.Errorf("gups@64MB misses/kacc = %.0f, want TLB thrash", met.TLBMissesPerKiloAccess)
	}
}

func TestBTreeProbesFindInsertedKeys(t *testing.T) {
	m := newM(t)
	inst, err := newBTree(m, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	bt := inst.(*btree)
	// Every key must be found with its stored value.
	for i := 0; i < len(bt.keys); i += 37 {
		k := bt.keys[i]
		v, ok := bt.probe(k)
		if !ok || v != k^0x5a5a {
			t.Fatalf("probe(%#x) = %#x, %v", k, v, ok)
		}
	}
	// Absent keys must miss.
	misses := 0
	for i := 0; i < 100; i++ {
		k := bt.rng.Next() >> 1
		if _, ok := bt.probe(k); !ok {
			misses++
		}
	}
	if misses < 95 {
		t.Errorf("only %d/100 absent probes missed", misses)
	}
}

func TestBTreeRunCountsFound(t *testing.T) {
	m := newM(t)
	inst, err := newBTree(m, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	bt := inst.(*btree)
	bt.Run(50_000)
	if bt.found == 0 {
		t.Error("no probes succeeded")
	}
}

func TestHashJoinMatchRate(t *testing.T) {
	m := newM(t)
	inst, err := newHashJoin(m, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	h := inst.(*hashjoin)
	h.Run(100_000)
	// ~half the probes are drawn from the build side; matches must be in
	// that ballpark relative to completed probes. Lower bound loosely.
	if h.matches == 0 {
		t.Fatal("join produced no matches")
	}
}

func TestMicroWorkloadsRunUnderBudget(t *testing.T) {
	for _, name := range []string{"gups-rand", "btree-rand", "hashjoin-rand"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := newM(t)
		inst, err := spec.Build(m, spec.Sizes(workloads.Tiny)[0])
		if err != nil {
			t.Fatal(err)
		}
		start := m.Counters()
		inst.Run(40_000)
		d := perf.Delta(start, m.Counters())
		acc := d.Get(perf.AllLoads) + d.Get(perf.AllStores)
		if acc < 40_000 || acc > 120_000 {
			t.Errorf("%s: %d accesses for 40k budget", name, acc)
		}
		if d.Get(perf.Branches) == 0 {
			t.Errorf("%s: no branches", name)
		}
	}
}
