// Package micro implements the classic address-translation
// microbenchmarks of the virtual-memory literature the paper builds on:
// GUPS-style random table updates, B+tree index probes, and hash join.
// They are not part of the paper's Table I, but they are the standard
// stress kernels papers like Midgard, Mosaic Pages and prefetched address
// translation evaluate against — useful extra points for the scaling
// analyses.
package micro

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// gups is the HPCC RandomAccess kernel: read-modify-write updates at
// pseudo-random table locations. Ladder parameter: log2 of table bytes.
type gups struct {
	m     *machine.Machine
	table workloads.Array
	x     uint64 // xorshift state (the benchmark's own generator)
}

var gupsLadder = []uint64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30}

func newGUPS(m *machine.Machine, logBytes uint64) (workloads.Instance, error) {
	words := (uint64(1) << logBytes) / 8
	table, err := workloads.NewArray(m, words)
	if err != nil {
		return nil, err
	}
	// HPCC initializes table[i] = i (untimed here, as in the timed-kernel
	// methodology).
	for i := uint64(0); i < words; i++ {
		table.Poke(i, i)
	}
	return &gups{m: m, table: table, x: 0x2545F4914F6CDD1D}, nil
}

func (g *gups) next() uint64 {
	g.x ^= g.x << 13
	g.x ^= g.x >> 7
	g.x ^= g.x << 17
	return g.x
}

func (g *gups) Run(budget uint64) {
	bud := workloads.NewBudget(g.m, budget)
	words := g.table.Len()
	for i := uint64(0); ; i++ {
		r := g.next()
		idx := r % words
		g.table.Set(idx, g.table.Get(idx)^r)
		g.m.Ops(3)
		if i&63 == 0 {
			// The verification branch of the reference implementation.
			g.m.Branch(0x6755, r&0x80 != 0)
		}
		if i&511 == 0 && bud.Done() {
			return
		}
	}
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "gups",
		Generator: "rand",
		Suite:     "micro",
		Kind:      "random update (ST)",
		Ladder:    gupsLadder,
		Build: func(m *machine.Machine, logBytes uint64) (workloads.Instance, error) {
			return newGUPS(m, logBytes)
		},
	})
}
