package micro

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// embed is a recommendation-model embedding-lookup kernel (the
// DLRM-style sparse gather): each inference gathers a handful of rows
// from several large embedding tables and reduces them. It is the
// dominant datacenter incarnation of the random-gather pattern and a
// staple of recent address-translation papers. Ladder parameter: rows
// per table.

const (
	// embedTables is the number of embedding tables per model.
	embedTables = 8
	// embedDim is the embedding row width in 8-byte words.
	embedDim = 8
	// embedLookupsPerTable is how many rows one inference gathers from
	// each table (multi-hot features).
	embedLookupsPerTable = 4
)

var embedLadder = []uint64{1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20}

type embed struct {
	m      *machine.Machine
	tables [embedTables]workloads.Array
	rows   uint64
	rng    *workloads.RNG
}

func newEmbed(m *machine.Machine, rows uint64) (workloads.Instance, error) {
	e := &embed{m: m, rows: rows, rng: workloads.NewRNG(rows ^ 0xd17a)}
	for t := range e.tables {
		arr, err := workloads.NewArray(m, rows*embedDim)
		if err != nil {
			return nil, err
		}
		// Row initialization is untimed setup.
		for i := uint64(0); i < rows*embedDim; i += embedDim {
			arr.Poke(i, i^uint64(t))
		}
		e.tables[t] = arr
	}
	return e, nil
}

func (e *embed) Run(budget uint64) {
	bud := workloads.NewBudget(e.m, budget)
	for i := uint64(0); ; i++ {
		// One inference: gather and sum rows across every table.
		var acc uint64
		for t := range e.tables {
			for l := 0; l < embedLookupsPerTable; l++ {
				// Zipf-ish skew: popular items dominate real traces.
				row := e.rng.Intn(e.rows)
				if e.rng.Intn(4) != 0 {
					row %= (e.rows / 16) + 1 // hot head
				}
				base := row * embedDim
				for d := uint64(0); d < embedDim; d++ {
					acc += e.tables[t].Get(base + d)
					e.m.Ops(1)
				}
			}
		}
		// Dense interaction layer (ALU work) plus the ranking branch.
		e.m.Ops(64)
		e.m.Branch(0xD17A, acc&16 != 0)
		if i&31 == 0 && bud.Done() {
			return
		}
	}
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "embed",
		Generator: "rand",
		Suite:     "micro",
		Kind:      "embedding gather (ST)",
		Ladder:    embedLadder,
		Build: func(m *machine.Machine, rows uint64) (workloads.Instance, error) {
			return newEmbed(m, rows)
		},
	})
}
