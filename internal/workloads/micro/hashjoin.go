package micro

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// hashjoin is the no-partitioning hash join kernel of the in-memory
// database literature: build a chained hash table over relation R, then
// stream relation S and probe — a sequential scan interleaved with random
// table accesses, the canonical mixed AT pattern. Ladder parameter: build
// tuples |R| (|S| = 4|R|).

// probeFactor sizes the probe relation relative to the build relation.
const probeFactor = 4

// matchShare is the fraction of probe keys drawn from R (join hit rate).
const matchShare = 0.5

type hashjoin struct {
	m *machine.Machine

	// Build side: bucket heads + chained entries.
	buckets workloads.Array // |R| entries: entry index+1 or 0
	keys    workloads.Array // per entry: key
	payload workloads.Array // per entry: payload
	next    workloads.Array // per entry: chain link

	// Probe side: a flat relation streamed in order.
	probeKeys workloads.Array

	nbuild uint64
	rng    *workloads.RNG

	// matches counts joined tuples (telemetry / correctness hook).
	matches uint64
}

var hashjoinLadder = []uint64{1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22}

func newHashJoin(m *machine.Machine, nbuild uint64) (workloads.Instance, error) {
	h := &hashjoin{m: m, nbuild: nbuild, rng: workloads.NewRNG(nbuild ^ 0x4a014a)}
	var err error
	if h.buckets, err = workloads.NewArray(m, nbuild); err != nil {
		return nil, err
	}
	if h.keys, err = workloads.NewArray(m, nbuild); err != nil {
		return nil, err
	}
	if h.payload, err = workloads.NewArray(m, nbuild); err != nil {
		return nil, err
	}
	if h.next, err = workloads.NewArray(m, nbuild); err != nil {
		return nil, err
	}
	if h.probeKeys, err = workloads.NewArray(m, probeFactor*nbuild); err != nil {
		return nil, err
	}
	// Build phase (untimed setup; the timed kernel is the probe loop, as
	// in the join microbenchmark literature). R keys are dense-random.
	buildKeys := make([]uint64, nbuild)
	for i := uint64(0); i < nbuild; i++ {
		k := h.rng.Next()
		buildKeys[i] = k
		b := h.hash(k)
		h.keys.Poke(i, k)
		h.payload.Poke(i, k^0x77)
		h.next.Poke(i, h.buckets.Peek(b))
		h.buckets.Poke(b, i+1)
	}
	for i := uint64(0); i < probeFactor*nbuild; i++ {
		if h.rng.Float64() < matchShare {
			h.probeKeys.Poke(i, buildKeys[h.rng.Intn(nbuild)])
		} else {
			h.probeKeys.Poke(i, h.rng.Next()|1<<63) // guaranteed miss half
		}
	}
	return h, nil
}

func (h *hashjoin) hash(k uint64) uint64 {
	k ^= k >> 31
	k *= 0x7FB5D329728EA185
	k ^= k >> 27
	return k % h.nbuild
}

func (h *hashjoin) Run(budget uint64) {
	bud := workloads.NewBudget(h.m, budget)
	n := h.probeKeys.Len()
	for start := uint64(0); ; start++ {
		for i := uint64(0); i < n; i++ {
			k := h.probeKeys.Get(i) // sequential stream
			h.m.Ops(4)              // hash arithmetic
			idx := h.buckets.Get(h.hash(k))
			for idx != 0 {
				match := h.keys.Get(idx-1) == k
				h.m.Branch(0x4A01, match)
				if match {
					h.matches += h.payload.Get(idx-1) & 1
					h.matches++
					break
				}
				idx = h.next.Get(idx - 1)
			}
			if i&511 == 0 && bud.Done() {
				return
			}
		}
	}
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "hashjoin",
		Generator: "rand",
		Suite:     "micro",
		Kind:      "hash join (ST)",
		Ladder:    hashjoinLadder,
		Build: func(m *machine.Machine, nbuild uint64) (workloads.Instance, error) {
			return newHashJoin(m, nbuild)
		},
	})
}
