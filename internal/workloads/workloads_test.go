package workloads

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
)

func TestPresetPick(t *testing.T) {
	if got := Tiny.pick(9); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Tiny.pick(9) = %v", got)
	}
	got := Medium.pick(9)
	if len(got) != 6 || got[0] != 0 || got[len(got)-1] != 8 {
		t.Errorf("Medium.pick(9) = %v; must span first..last", got)
	}
	if got := Large.pick(5); len(got) != 5 {
		t.Errorf("Large.pick(5) = %v", got)
	}
	if got := Small.pick(2); len(got) != 2 {
		t.Errorf("Small.pick(2) = %v", got)
	}
	if got := Small.pick(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Small.pick(1) = %v", got)
	}
}

func TestParsePreset(t *testing.T) {
	for _, s := range []string{"tiny", "small", "medium", "large"} {
		if _, err := ParsePreset(s); err != nil {
			t.Errorf("ParsePreset(%q): %v", s, err)
		}
	}
	if _, err := ParsePreset("huge"); err == nil {
		t.Error("ParsePreset(huge) accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, s *Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	build := func(m *machine.Machine, p uint64) (Instance, error) { return nil, nil }
	mustPanic("empty ladder", &Spec{Program: "x", Generator: "y", Build: build})
	mustPanic("nil build", &Spec{Program: "x", Generator: "y", Ladder: []uint64{1}})
	mustPanic("unsorted", &Spec{Program: "x", Generator: "y", Ladder: []uint64{2, 1}, Build: build})
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("RNG nondeterministic")
		}
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(0) // zero seed remapped
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRNGRoughlyUniform(t *testing.T) {
	r := NewRNG(9)
	var buckets [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, b := range buckets {
		if b < n/8*9/10 || b > n/8*11/10 {
			t.Errorf("bucket %d count %d far from %d", i, b, n/8)
		}
	}
}

func TestArrayBoundsChecked(t *testing.T) {
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(3, 9)
	if a.Get(3) != 9 {
		t.Error("round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	a.Get(4)
}

func TestArrayPokePeekBypassCounters(t *testing.T) {
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	a.Poke(5, 77)
	if a.Peek(5) != 77 {
		t.Error("poke/peek round trip failed")
	}
	if m.Accesses() != 0 {
		t.Error("poke/peek retired accesses")
	}
	if a.Get(5) != 77 {
		t.Error("timed read does not see poked data")
	}
}

func TestBudget(t *testing.T) {
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewArray(m, 100)
	b := NewBudget(m, 10)
	if b.Done() {
		t.Fatal("fresh budget done")
	}
	for i := uint64(0); i < 10; i++ {
		a.Get(i)
	}
	if !b.Done() {
		t.Error("budget not done after 10 accesses")
	}
}
