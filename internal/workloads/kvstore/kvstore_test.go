package kvstore

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

func newStoreT(t *testing.T, capacity uint64) (*machine.Machine, *store) {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newStore(m, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestWarmFillPopulatesAllSlots(t *testing.T) {
	_, s := newStoreT(t, 512)
	// Every slot must be reachable from some bucket exactly once.
	seen := make(map[uint64]bool)
	for h := uint64(0); h < s.capacity; h++ {
		idx := s.buckets.Peek(h)
		for idx != 0 {
			slot := idx - 1
			if seen[slot] {
				t.Fatalf("slot %d linked twice", slot)
			}
			seen[slot] = true
			if s.hash(s.keys.Peek(slot)) != h {
				t.Fatalf("slot %d in wrong bucket", slot)
			}
			idx = s.next.Peek(slot)
		}
	}
	if uint64(len(seen)) != s.capacity {
		t.Errorf("%d slots linked, want %d", len(seen), s.capacity)
	}
}

func TestGetHitReadsValue(t *testing.T) {
	m, s := newStoreT(t, 256)
	key := s.keys.Peek(0) // a key known to be resident
	before := m.Accesses()
	if !s.get(key) {
		t.Fatal("resident key missed")
	}
	if m.Accesses()-before < valueWords {
		t.Error("hit did not read the value payload")
	}
	if s.hits != 1 || s.misses != 0 {
		t.Errorf("hit/miss telemetry = %d/%d", s.hits, s.misses)
	}
}

func TestGetMissThenInsertMakesResident(t *testing.T) {
	_, s := newStoreT(t, 256)
	// Find a key not in the store.
	resident := map[uint64]bool{}
	for i := uint64(0); i < s.capacity; i++ {
		resident[s.keys.Peek(i)] = true
	}
	var key uint64 = 1
	for resident[key] {
		key++
	}
	if s.get(key) {
		t.Fatal("non-resident key hit")
	}
	s.insert(key)
	if !s.get(key) {
		t.Error("key missing after insert")
	}
}

func TestInsertEvictsConsistently(t *testing.T) {
	_, s := newStoreT(t, 128)
	// Insert many new keys; the chain structure must stay consistent
	// (every slot linked exactly once) after heavy eviction churn.
	for k := uint64(1 << 40); k < 1<<40+300; k++ {
		if !s.get(k) {
			s.insert(k)
		}
	}
	seen := map[uint64]bool{}
	for h := uint64(0); h < s.capacity; h++ {
		idx := s.buckets.Peek(h)
		steps := 0
		for idx != 0 {
			slot := idx - 1
			if seen[slot] {
				t.Fatalf("slot %d linked twice after churn", slot)
			}
			seen[slot] = true
			idx = s.next.Peek(slot)
			if steps++; steps > int(s.capacity) {
				t.Fatal("chain cycle")
			}
		}
	}
	if uint64(len(seen)) != s.capacity {
		t.Errorf("%d slots linked after churn, want %d", len(seen), s.capacity)
	}
}

func TestRunHitRateTracksCapacity(t *testing.T) {
	// Larger caches must observe higher KV hit rates under the fixed key
	// space (the paper's §V-A memcached mechanism).
	rate := func(capacity uint64) float64 {
		m, s := newStoreT(t, capacity)
		_ = m
		s.Run(150_000)
		return s.HitRate()
	}
	small, big := rate(1<<10), rate(1<<14)
	if big <= small {
		t.Errorf("hit rate did not grow with capacity: %.4f vs %.4f", small, big)
	}
}

func TestZipfianVariantHotterThanUniform(t *testing.T) {
	// At equal capacity, zipfian requests concentrate on hot keys, so the
	// KV hit rate must beat uniform's.
	rate := func(sample keySampler) float64 {
		m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
		if err != nil {
			t.Fatal(err)
		}
		s, err := newStoreSampler(m, 1<<12, sample)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(150_000)
		return s.HitRate()
	}
	u, z := rate(uniformSampler), rate(zipfSampler)
	if z <= u*2 {
		t.Errorf("zipfian hit rate %.4f not well above uniform %.4f", z, u)
	}
}

func TestZipfianRegisteredOutsidePaperSuite(t *testing.T) {
	spec, err := workloads.ByName("memcached-zipfian")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Suite == "ycsb" {
		t.Error("zipfian variant must not join the paper's Table I suite")
	}
}

func TestRegisteredAndRuns(t *testing.T) {
	spec, err := workloads.ByName("memcached-uniform")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(m, spec.Sizes(workloads.Tiny)[0])
	if err != nil {
		t.Fatal(err)
	}
	start := m.Counters()
	inst.Run(50_000)
	d := perf.Delta(start, m.Counters())
	if d.Get(perf.AllLoads)+d.Get(perf.AllStores) < 50_000 {
		t.Error("run under budget")
	}
	if d.Get(perf.Branches) == 0 {
		t.Error("no branches retired")
	}
}
