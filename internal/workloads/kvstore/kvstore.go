// Package kvstore implements the memcached-uniform workload of the
// paper's Table I: an in-memory key-value cache (chained hash table, CLOCK
// eviction, slab-style value storage) driven by a YCSB-style uniform key
// distribution.
//
// The input-size parameter is the cache capacity in items, mirroring
// memcached's -m memory bound; the key space is fixed across the ladder,
// so the cache hit rate rises with footprint — the mechanism the paper
// blames for memcached's nonlinear overhead scaling (§V-A).
package kvstore

import (
	"math"

	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// valueWords is the value payload size in 8-byte words (a 64-byte value,
// typical of the small-object memcached deployments YCSB models).
const valueWords = 8

// keyspaceFactor fixes the key space at factor * the largest ladder
// capacity, so hit rates sweep from ~0.1% to ~25% across the ladder.
const keyspaceFactor = 4

var ladder = []uint64{1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21}

func keyspace() uint64 { return keyspaceFactor * ladder[len(ladder)-1] }

// keySampler draws request keys from the key space (uniform for the
// paper's workload; zipfian as the extension variant).
type keySampler func(rng *workloads.RNG) uint64

// store is the guest-memory cache. Chain links are slot+1 so 0 means nil.
type store struct {
	m        *machine.Machine
	capacity uint64
	sample   keySampler

	buckets workloads.Array // capacity entries: head slot+1 or 0
	next    workloads.Array // per slot: next slot+1 or 0
	keys    workloads.Array // per slot: key
	refs    workloads.Array // per slot: CLOCK reference bit
	vals    workloads.Array // capacity * valueWords

	hand uint64 // CLOCK hand
	rng  *workloads.RNG

	// hits/misses are workload-level telemetry (the KV-cache hit rate
	// the paper discusses), not hardware counters.
	hits, misses uint64
}

func newStore(m *machine.Machine, capacity uint64) (*store, error) {
	return newStoreSampler(m, capacity, uniformSampler)
}

func newStoreSampler(m *machine.Machine, capacity uint64, sample keySampler) (*store, error) {
	s := &store{m: m, capacity: capacity, sample: sample, rng: workloads.NewRNG(capacity ^ 0x6d656d63)}
	var err error
	if s.buckets, err = workloads.NewArray(m, capacity); err != nil {
		return nil, err
	}
	if s.next, err = workloads.NewArray(m, capacity); err != nil {
		return nil, err
	}
	if s.keys, err = workloads.NewArray(m, capacity); err != nil {
		return nil, err
	}
	if s.refs, err = workloads.NewArray(m, capacity); err != nil {
		return nil, err
	}
	if s.vals, err = workloads.NewArray(m, capacity*valueWords); err != nil {
		return nil, err
	}
	s.warmFill()
	return s, nil
}

func (s *store) hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key % s.capacity
}

// warmFill loads the cache to capacity with distinct keys, untimed — the
// measured region starts from the steady state a long-running memcached
// would be in (the paper's warmup dry run).
func (s *store) warmFill() {
	seen := make(map[uint64]bool, s.capacity)
	slot := uint64(0)
	for slot < s.capacity {
		key := s.rng.Intn(keyspace())
		if seen[key] {
			continue
		}
		seen[key] = true
		h := s.hash(key)
		head := s.buckets.Peek(h)
		s.next.Poke(slot, head)
		s.buckets.Poke(h, slot+1)
		s.keys.Poke(slot, key)
		for w := uint64(0); w < valueWords; w++ {
			s.vals.Poke(slot*valueWords+w, key^w)
		}
		slot++
	}
}

// get looks key up, reading the value on a hit (timed).
func (s *store) get(key uint64) bool {
	h := s.hash(key)
	s.m.Ops(4) // hash arithmetic
	idx := s.buckets.Get(h)
	for idx != 0 {
		k := s.keys.Get(idx - 1)
		match := k == key
		s.m.Branch(0x6301, match)
		if match {
			var sink uint64
			for w := uint64(0); w < valueWords; w++ {
				sink ^= s.vals.Get((idx-1)*valueWords + w)
			}
			s.m.Ops(valueWords)
			s.refs.Set(idx-1, 1)
			s.hits++
			return true
		}
		idx = s.next.Get(idx - 1)
	}
	s.misses++
	return false
}

// insert adds key after a miss (read-through fill), evicting a CLOCK
// victim (timed).
func (s *store) insert(key uint64) {
	victim := s.evict()
	// Unlink the victim from its old chain.
	oldKey := s.keys.Get(victim)
	s.unlink(oldKey, victim)
	// Link into its new bucket and write the value.
	h := s.hash(key)
	s.m.Ops(4)
	head := s.buckets.Get(h)
	s.next.Set(victim, head)
	s.buckets.Set(h, victim+1)
	s.keys.Set(victim, key)
	for w := uint64(0); w < valueWords; w++ {
		s.vals.Set(victim*valueWords+w, key^w)
	}
	s.refs.Set(victim, 0)
}

// evict advances the CLOCK hand to the next unreferenced slot.
func (s *store) evict() uint64 {
	for {
		r := s.refs.Get(s.hand)
		victim := r == 0
		s.m.Branch(0x6302, victim)
		slot := s.hand
		if victim {
			s.hand = (s.hand + 1) % s.capacity
			return slot
		}
		s.refs.Set(slot, 0)
		s.hand = (s.hand + 1) % s.capacity
		s.m.Ops(2)
	}
}

// unlink removes slot from the chain of key's bucket.
func (s *store) unlink(key uint64, slot uint64) {
	h := s.hash(key)
	s.m.Ops(4)
	idx := s.buckets.Get(h)
	if idx == slot+1 {
		s.buckets.Set(h, s.next.Get(slot))
		return
	}
	for idx != 0 {
		nxt := s.next.Get(idx - 1)
		found := nxt == slot+1
		s.m.Branch(0x6303, found)
		if found {
			s.next.Set(idx-1, s.next.Get(slot))
			return
		}
		idx = nxt
	}
}

// uniformSampler is the paper's YCSB-uniform key distribution.
func uniformSampler(rng *workloads.RNG) uint64 { return rng.Intn(keyspace()) }

// zipfSampler is YCSB's zipfian distribution (s = 0.99, approximated by
// inverse-CDF), with keys scrambled so hot keys scatter over the key
// space the way YCSB's hashed zipfian does.
func zipfSampler(rng *workloads.RNG) uint64 {
	n := float64(keyspace())
	u := rng.Float64()
	rank := math.Pow(math.Pow(n, 0.01)*u+1, 100) // (n^(1-s)u + 1)^(1/(1-s)), s=0.99
	if rank >= n {
		rank = n - 1
	}
	return (uint64(rank) * 0x9E3779B97F4A7C15) % keyspace()
}

// Run drives GETs (with read-through inserts on miss) using the store's
// key distribution.
func (s *store) Run(budget uint64) {
	bud := workloads.NewBudget(s.m, budget)
	for i := 0; ; i++ {
		key := s.sample(s.rng)
		hit := s.get(key)
		s.m.Branch(0x6304, hit)
		if !hit {
			s.insert(key)
		}
		s.m.Ops(6) // request parsing / protocol work
		if i&255 == 0 && bud.Done() {
			return
		}
	}
}

// HitRate returns the KV-level hit rate observed so far.
func (s *store) HitRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "memcached",
		Generator: "uniform",
		Suite:     "ycsb",
		Kind:      "key-value store (MT)",
		Ladder:    ladder,
		Build: func(m *machine.Machine, capacity uint64) (workloads.Instance, error) {
			return newStore(m, capacity)
		},
	})
	// The zipfian variant is an extension (YCSB's other canonical
	// distribution), registered outside the paper's Table I suite set.
	workloads.Register(&workloads.Spec{
		Program:   "memcached",
		Generator: "zipfian",
		Suite:     "ycsb-ext",
		Kind:      "key-value store (MT)",
		Ladder:    ladder,
		Build: func(m *machine.Machine, capacity uint64) (workloads.Instance, error) {
			return newStoreSampler(m, capacity, zipfSampler)
		},
	})
}
