// Package workloads defines the workload abstraction of the paper's
// methodology (§IV): a *workload* is a program plus an input generator,
// swept over input sizes to produce instances with growing memory
// footprints. Concrete workloads live in subpackages (graph, kvstore, mcf,
// streamcluster, synth) and register themselves here.
//
// Instances run against a simulated machine through its Load64 / Store64 /
// Ops / Branch API, so every data structure lives in simulated guest
// memory and every access exercises the full translation stack.
package workloads

import (
	"fmt"
	"sort"

	"atscale/internal/arch"
	"atscale/internal/machine"
)

// SizePreset selects how much of a workload's input-size ladder to sweep.
type SizePreset string

const (
	// Tiny is for unit tests: two small rungs.
	Tiny SizePreset = "tiny"
	// Small keeps runs to seconds: four rungs.
	Small SizePreset = "small"
	// Medium is the benchmark default: six rungs.
	Medium SizePreset = "medium"
	// Large is the full ladder (footprints to ~1 GB and beyond for
	// data-free workloads).
	Large SizePreset = "large"
)

// pick returns the ladder indices the preset selects. Tiny keeps the two
// smallest rungs (fast unit tests); Small and Medium spread their rungs
// evenly across the ladder, always including the largest, so reduced
// sweeps still cover the full footprint range; Large keeps everything.
func (p SizePreset) pick(total int) []int {
	var n int
	switch p {
	case Tiny:
		n = 2
		if n > total {
			n = total
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	case Small:
		n = 4
	case Medium:
		n = 6
	default:
		n = total
	}
	if n >= total {
		n = total
	}
	if n <= 1 {
		return []int{0}
	}
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		j := i * (total - 1) / (n - 1)
		if len(idx) == 0 || idx[len(idx)-1] != j {
			idx = append(idx, j)
		}
	}
	return idx
}

// ParsePreset validates a preset name.
func ParsePreset(s string) (SizePreset, error) {
	switch SizePreset(s) {
	case Tiny, Small, Medium, Large:
		return SizePreset(s), nil
	}
	return "", fmt.Errorf("workloads: unknown size preset %q", s)
}

// Instance is one built workload instance ready to execute its measured
// region.
type Instance interface {
	// Run executes the workload until roughly budget memory accesses
	// have retired, looping the algorithm (iterations, queries, sources)
	// as needed. Run may be called once per instance.
	Run(budget uint64)
}

// BuildFunc constructs an instance for a size parameter on machine m.
// Construction is the untimed setup phase (allocation + input
// generation + one warmup pass where the real program would have one).
type BuildFunc func(m *machine.Machine, param uint64) (Instance, error)

// Spec describes one workload (a Table I row crossed with a Table II
// generator).
type Spec struct {
	// Program is the benchmark program name ("bc", "mcf", ...).
	Program string
	// Generator is the input generator name ("urand", "kron", ...).
	Generator string
	// Suite is the benchmark suite the program comes from.
	Suite string
	// Kind is the program's domain ("graph processing (MT)", ...).
	Kind string
	// Ladder is the ascending list of size parameters (meaning is
	// workload-specific: graph scale, key count, node count...).
	Ladder []uint64
	// Build constructs an instance.
	Build BuildFunc
}

// Name returns the paper's workload naming: program-generator.
func (s *Spec) Name() string { return s.Program + "-" + s.Generator }

// Timeline phase-span names. Build marks "setup" (allocation, input
// generation, quiet prefaulting); RunPhased marks "steady" (the measured
// region). The machine's phase track carries them when tracing is on and
// records nothing otherwise.
const (
	PhaseSetup  = "setup"
	PhaseSteady = "steady"
)

// Instantiate builds the instance with the setup phase marked on the
// machine's timeline. It is the traced-aware form of calling s.Build
// directly.
func (s *Spec) Instantiate(m *machine.Machine, param uint64) (Instance, error) {
	m.BeginPhase(PhaseSetup)
	inst, err := s.Build(m, param)
	m.EndPhase()
	return inst, err
}

// RunPhased executes the instance's measured region with the steady
// phase marked on the machine's timeline.
func RunPhased(m *machine.Machine, inst Instance, budget uint64) {
	m.BeginPhase(PhaseSteady)
	inst.Run(budget)
	m.EndPhase()
}

// Sizes returns the ladder rungs the preset selects.
func (s *Spec) Sizes(p SizePreset) []uint64 {
	idx := p.pick(len(s.Ladder))
	out := make([]uint64, len(idx))
	for i, j := range idx {
		out[i] = s.Ladder[j]
	}
	return out
}

var registry []*Spec

// Register adds a workload spec; subpackages call it from init.
// Registering a duplicate name or an empty ladder panics: these are
// programming errors.
func Register(s *Spec) {
	if len(s.Ladder) == 0 || s.Build == nil {
		panic(fmt.Sprintf("workloads: spec %q incomplete", s.Name()))
	}
	if !sort.SliceIsSorted(s.Ladder, func(i, j int) bool { return s.Ladder[i] < s.Ladder[j] }) {
		panic(fmt.Sprintf("workloads: spec %q ladder not ascending", s.Name()))
	}
	for _, r := range registry {
		if r.Name() == s.Name() {
			panic(fmt.Sprintf("workloads: duplicate spec %q", s.Name()))
		}
	}
	registry = append(registry, s)
}

// All returns every registered workload, sorted by name.
func All() []*Spec {
	out := append([]*Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ByName finds a workload by its program-generator name.
func ByName(name string) (*Spec, error) {
	for _, s := range registry {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Array is a guest-memory array of 8-byte words: the container every
// workload builds its data structures from.
type Array struct {
	m    *machine.Machine
	base arch.VAddr
	n    uint64
}

// NewArray allocates an n-word array in guest memory.
func NewArray(m *machine.Machine, n uint64) (Array, error) {
	if n == 0 {
		n = 1
	}
	base, err := m.Malloc(n * 8)
	if err != nil {
		return Array{}, err
	}
	return Array{m: m, base: base, n: n}, nil
}

// Len returns the element count.
func (a Array) Len() uint64 { return a.n }

// Addr returns the virtual address of element i.
func (a Array) Addr(i uint64) arch.VAddr { return a.base + arch.VAddr(i*8) }

func (a Array) check(i uint64) {
	if i >= a.n {
		panic(fmt.Sprintf("workloads: index %d out of range [0,%d)", i, a.n))
	}
}

// Get retires a load of element i.
func (a Array) Get(i uint64) uint64 {
	a.check(i)
	return a.m.Load64(a.Addr(i))
}

// Set retires a store to element i.
func (a Array) Set(i uint64, v uint64) {
	a.check(i)
	a.m.Store64(a.Addr(i), v)
}

// Poke writes element i untimed (setup phase).
func (a Array) Poke(i uint64, v uint64) {
	a.check(i)
	a.m.Poke64(a.Addr(i), v)
}

// Peek reads element i untimed (setup phase).
func (a Array) Peek(i uint64) uint64 {
	a.check(i)
	return a.m.Peek64(a.Addr(i))
}

// Budget tracks a Run's access budget against the machine's counters.
type Budget struct {
	m     *machine.Machine
	limit uint64
}

// NewBudget arms a budget of roughly n retired accesses.
func NewBudget(m *machine.Machine, n uint64) *Budget {
	return &Budget{m: m, limit: m.Accesses() + n}
}

// Done reports whether the budget is exhausted. Call it at coarse
// boundaries (per source, per iteration chunk); it reads two counters.
func (b *Budget) Done() bool { return b.m.Accesses() >= b.limit }
