// Package streamcluster implements the streamcluster-rand workload of the
// paper's Table I: PARSEC's streaming k-median clustering kernel on
// uniformly random points.
//
// The access pattern is scan-dominant — points stream past a small, hot
// set of centers — with occasional random-access gain evaluations against
// previously seen points. The paper finds this workload's AT overhead
// essentially uncorrelated with footprint (Table IV: adj. R² = 0.122);
// the same structure produces that noise here.
package streamcluster

import (
	"math"

	"atscale/internal/machine"
	"atscale/internal/workloads"
)

const (
	// dim is the point dimensionality in 8-byte words.
	dim = 16
	// maxCenters bounds the facility set.
	maxCenters = 8
	// gainSamples is how many random points a gain evaluation touches.
	gainSamples = 4
	// gainProbability is the chance a streamed point triggers a gain
	// evaluation.
	gainProbability = 0.05
)

var ladder = []uint64{1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22}

// cluster is the guest-memory clustering state.
type cluster struct {
	m       *machine.Machine
	npoints uint64

	points  workloads.Array // npoints * dim float64 bits
	centers workloads.Array // maxCenters * dim float64 bits
	ncent   uint64
	thresh  float64

	rng *workloads.RNG
}

func newCluster(m *machine.Machine, npoints uint64) (*cluster, error) {
	c := &cluster{m: m, npoints: npoints, rng: workloads.NewRNG(npoints ^ 0x7363)}
	var err error
	if c.points, err = workloads.NewArray(m, npoints*dim); err != nil {
		return nil, err
	}
	if c.centers, err = workloads.NewArray(m, maxCenters*dim); err != nil {
		return nil, err
	}
	for i := uint64(0); i < npoints*dim; i++ {
		c.points.Poke(i, math.Float64bits(c.rng.Float64()))
	}
	// Seed the first center with point 0.
	for d := uint64(0); d < dim; d++ {
		c.centers.Poke(d, c.points.Peek(d))
	}
	c.ncent = 1
	c.thresh = float64(dim) / 8
	return c, nil
}

// dist2 computes the squared distance between streamed point p and center
// k (timed loads of both).
func (c *cluster) dist2(p, k uint64) float64 {
	var s float64
	for d := uint64(0); d < dim; d++ {
		x := math.Float64frombits(c.points.Get(p*dim + d))
		y := math.Float64frombits(c.centers.Get(k*dim + d))
		s += (x - y) * (x - y)
		c.m.Ops(3)
	}
	return s
}

// Run streams points past the centers, opening facilities and sampling
// gains, wrapping around the point set until the budget expires.
func (c *cluster) Run(budget uint64) {
	bud := workloads.NewBudget(c.m, budget)
	for p := uint64(0); ; p = (p + 1) % c.npoints {
		best := math.Inf(1)
		for k := uint64(0); k < c.ncent; k++ {
			if d := c.dist2(p, k); d < best {
				best = d
			}
			c.m.Ops(1)
		}
		// Facility opening: far points may become centers.
		open := best > c.thresh && c.ncent < maxCenters
		c.m.Branch(0x5C01, open)
		if open {
			for d := uint64(0); d < dim; d++ {
				c.centers.Set(c.ncent*dim+d, c.points.Get(p*dim+d))
			}
			c.ncent++
		} else if best > c.thresh {
			// Facility set full: re-seed a random center (the kernel's
			// periodic re-clustering), keeping center churn alive.
			k := c.rng.Intn(maxCenters)
			for d := uint64(0); d < dim; d++ {
				c.centers.Set(k*dim+d, c.points.Get(p*dim+d))
			}
			c.thresh *= 1.05
		}
		// Gain evaluation: compare against random previously seen points.
		if c.rng.Float64() < gainProbability {
			for s := 0; s < gainSamples; s++ {
				q := c.rng.Intn(c.npoints)
				var acc float64
				for d := uint64(0); d < dim; d += 4 { // strided sample of q
					acc += math.Float64frombits(c.points.Get(q*dim + d))
					c.m.Ops(2)
				}
				c.m.Branch(0x5C02, acc > float64(dim)/8)
			}
		}
		c.m.Ops(4)
		if p&127 == 0 && bud.Done() {
			return
		}
	}
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "streamcluster",
		Generator: "rand",
		Suite:     "parsec",
		Kind:      "clustering (MT)",
		Ladder:    ladder,
		Build: func(m *machine.Machine, npoints uint64) (workloads.Instance, error) {
			return newCluster(m, npoints)
		},
	})
}
