package streamcluster

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

func newC(t *testing.T, n uint64) (*machine.Machine, *cluster) {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := newCluster(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestSetupSeedsFirstCenter(t *testing.T) {
	_, c := newC(t, 256)
	if c.ncent != 1 {
		t.Fatalf("ncent = %d", c.ncent)
	}
	for d := uint64(0); d < dim; d++ {
		if c.centers.Peek(d) != c.points.Peek(d) {
			t.Fatal("center 0 != point 0")
		}
	}
}

func TestRunOpensCenters(t *testing.T) {
	m, c := newC(t, 1024)
	start := m.Counters()
	c.Run(100_000)
	if c.ncent < 2 {
		t.Errorf("no centers opened (ncent = %d)", c.ncent)
	}
	if c.ncent > maxCenters {
		t.Errorf("ncent %d exceeds maxCenters", c.ncent)
	}
	d := perf.Delta(start, m.Counters())
	acc := d.Get(perf.AllLoads) + d.Get(perf.AllStores)
	if acc < 100_000 {
		t.Errorf("accesses = %d under budget", acc)
	}
	if d.Get(perf.Branches) == 0 {
		t.Error("no branches")
	}
}

func TestScanDominantMix(t *testing.T) {
	// streamcluster is scan-dominant: the retired-walk rate must be far
	// lower than a random-access workload's at similar footprint.
	m, c := newC(t, 1<<14) // 2M points words -> 16MB, beyond STLB reach
	start := m.Counters()
	c.Run(200_000)
	d := perf.Delta(start, m.Counters())
	met := perf.Compute(d)
	if met.TLBMissesPerKiloAccess > 50 {
		t.Errorf("TLB misses per kiloaccess = %.1f; expected scan-dominant (<50)",
			met.TLBMissesPerKiloAccess)
	}
}

func TestRegistered(t *testing.T) {
	if _, err := workloads.ByName("streamcluster-rand"); err != nil {
		t.Fatal(err)
	}
}
