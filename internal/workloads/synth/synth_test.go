package synth

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

func build(t *testing.T, name string, logBytes uint64) (*machine.Machine, workloads.Instance) {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(m, logBytes)
	if err != nil {
		t.Fatal(err)
	}
	return m, inst
}

func TestAllRegistered(t *testing.T) {
	for _, n := range []string{"uniform-synth", "zipf-synth", "stride-synth"} {
		if _, err := workloads.ByName(n); err != nil {
			t.Error(err)
		}
	}
}

func TestFootprintMatchesParam(t *testing.T) {
	m, _ := build(t, "uniform-synth", 24)
	if m.Footprint() != 16*arch.MB {
		t.Errorf("footprint = %d, want 16MB", m.Footprint())
	}
}

func TestUniformThrashesTLB(t *testing.T) {
	m, inst := build(t, "uniform-synth", 26) // 64MB >> STLB reach
	start := m.Counters()
	inst.Run(60_000)
	d := perf.Delta(start, m.Counters())
	met := perf.Compute(d)
	if met.TLBMissesPerKiloAccess < 300 {
		t.Errorf("uniform over 64MB: %.0f walks/kiloaccess, want TLB thrash (>=300)",
			met.TLBMissesPerKiloAccess)
	}
}

func TestStrideBarelyMissesTLB(t *testing.T) {
	m, inst := build(t, "stride-synth", 26)
	start := m.Counters()
	inst.Run(60_000)
	d := perf.Delta(start, m.Counters())
	met := perf.Compute(d)
	// One page = 64 line-strided accesses; post-warmup misses ~ 1/64.
	if met.TLBMissesPerKiloAccess > 40 {
		t.Errorf("stride: %.0f walks/kiloaccess, want <=40", met.TLBMissesPerKiloAccess)
	}
}

func TestZipfBetweenUniformAndStride(t *testing.T) {
	rate := func(name string) float64 {
		m, inst := build(t, name, 26)
		start := m.Counters()
		inst.Run(60_000)
		return perf.Compute(perf.Delta(start, m.Counters())).TLBMissesPerKiloAccess
	}
	u, z, s := rate("uniform-synth"), rate("zipf-synth"), rate("stride-synth")
	// Zipf at s=0.99 concentrates half its mass on ~1% of pages, so it
	// sits far below uniform (and can undercut even the stride pattern).
	if z >= u/4 {
		t.Errorf("zipf %.0f not well below uniform %.0f", z, u)
	}
	if s >= u/4 {
		t.Errorf("stride %.0f not well below uniform %.0f", s, u)
	}
	if z == 0 {
		t.Error("zipf produced no walks at all")
	}
}

func TestZipfPageInRange(t *testing.T) {
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := newStream(m, 24, zipf)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.(*stream)
	for i := 0; i < 10000; i++ {
		if p := s.zipfPage(); p >= s.pages {
			t.Fatalf("zipfPage = %d out of %d", p, s.pages)
		}
	}
}
