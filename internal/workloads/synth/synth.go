// Package synth provides data-free synthetic address-stream workloads:
// uniform, Zipf and strided access over a single large region. Because no
// payload backing is materialized by loads, these sweep *virtual*
// footprints far beyond what the data-dependent workloads can afford —
// the simulator's stand-in for the paper's hundreds-of-gigabyte rungs.
// They extend the TLB/walker-side sweeps; they are not part of the
// paper's Table I workload set.
package synth

import (
	"math"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// zipfS is the Zipf exponent (YCSB's default skew).
const zipfS = 0.99

// Ladder entries are log2 of the region size in bytes: 16 MB to 64 GB.
var ladder = []uint64{24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36}

type pattern uint8

const (
	uniform pattern = iota
	zipf
	stride
)

// stream is one synthetic address-stream instance.
type stream struct {
	m     *machine.Machine
	base  arch.VAddr
	words uint64
	pages uint64
	pat   pattern
	rng   *workloads.RNG

	pos uint64 // stride cursor
}

func newStream(m *machine.Machine, logBytes uint64, pat pattern) (workloads.Instance, error) {
	size := uint64(1) << logBytes
	base, err := m.Malloc(size)
	if err != nil {
		return nil, err
	}
	return &stream{
		m:     m,
		base:  base,
		words: size / 8,
		pages: size >> arch.PageShift4K,
		pat:   pat,
		rng:   workloads.NewRNG(logBytes ^ 0x73796e),
	}, nil
}

// zipfPage samples a page index with an (approximate) Zipf distribution
// over ranks, then scrambles the rank so hot pages are scattered across
// the region rather than clustered at its start.
func (s *stream) zipfPage() uint64 {
	u := s.rng.Float64()
	// Inverse-CDF approximation for s < 1: CDF(x) ~ x^(1-s).
	rank := uint64(math.Pow(float64(s.pages), 1-zipfS)*u + 1)
	rank = uint64(math.Pow(float64(rank), 1/(1-zipfS)))
	if rank >= s.pages {
		rank = s.pages - 1
	}
	// Multiplicative scramble (odd constant => a bijection mod 2^k when
	// pages is a power of two, which ladder sizes guarantee).
	return (rank * 0x9E3779B97F4A7C15) & (s.pages - 1)
}

func (s *stream) nextVA() arch.VAddr {
	switch s.pat {
	case uniform:
		return s.base + arch.VAddr(s.rng.Intn(s.words)*8)
	case zipf:
		page := s.zipfPage()
		off := s.rng.Intn(512) * 8
		return s.base + arch.VAddr(page<<arch.PageShift4K+off)
	default: // stride: one load per cache line, wrapping
		va := s.base + arch.VAddr(s.pos*8)
		s.pos = (s.pos + 8) % s.words
		return va
	}
}

// Run issues the address stream with a light sprinkle of branches and ALU
// work so the instruction mix resembles a pointer-chasing microbenchmark.
func (s *stream) Run(budget uint64) {
	bud := workloads.NewBudget(s.m, budget)
	for i := uint64(0); ; i++ {
		va := s.nextVA()
		v := s.m.Load64(va)
		s.m.Ops(2)
		if i&15 == 0 {
			// Occasional data-dependent store (keeps the memory-ordering
			// machinery exercised).
			s.m.Store64(va, v+1)
		}
		if i&7 == 0 {
			// Data-dependent branch on the (hashed) address: genuinely
			// unpredictable, like a pointer-chase comparison.
			h := uint64(va) * 0x9E3779B97F4A7C15
			s.m.Branch(0x5901, h&8 != 0)
		}
		if i&1023 == 0 && bud.Done() {
			return
		}
	}
}

func register(program string, pat pattern) {
	workloads.Register(&workloads.Spec{
		Program:   program,
		Generator: "synth",
		Suite:     "synthetic",
		Kind:      "address stream (ST)",
		Ladder:    ladder,
		Build: func(m *machine.Machine, logBytes uint64) (workloads.Instance, error) {
			return newStream(m, logBytes, pat)
		},
	})
}

func init() {
	register("uniform", uniform)
	register("zipf", zipf)
	register("stride", stride)
}
