package mcf

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

func newNet(t *testing.T, n uint64) (*machine.Machine, *network) {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := newNetwork(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return m, nw
}

func TestTreeWellFormed(t *testing.T) {
	_, nw := newNet(t, 1024)
	for i := uint64(1); i < nw.n; i++ {
		p := nw.parent.Peek(i)
		if p >= i {
			t.Fatalf("parent[%d] = %d not < i", i, p)
		}
		if nw.depth.Peek(i) != nw.depth.Peek(p)+1 {
			t.Fatalf("depth[%d] inconsistent", i)
		}
	}
	if nw.depth.Peek(0) != 0 || nw.parent.Peek(0) != 0 {
		t.Error("root malformed")
	}
}

func TestArcsInRange(t *testing.T) {
	_, nw := newNet(t, 256)
	for j := uint64(0); j < nw.a; j++ {
		if nw.tail.Peek(j) >= nw.n || nw.head.Peek(j) >= nw.n {
			t.Fatalf("arc %d endpoint out of range", j)
		}
	}
	if nw.a != arcsPerNode*nw.n {
		t.Errorf("arc count %d, want %d", nw.a, arcsPerNode*nw.n)
	}
}

func TestRunRespectsBudgetAndPivots(t *testing.T) {
	m, nw := newNet(t, 2048)
	start := m.Counters()
	nw.Run(120_000)
	d := perf.Delta(start, m.Counters())
	acc := d.Get(perf.AllLoads) + d.Get(perf.AllStores)
	if acc < 120_000 || acc > 300_000 {
		t.Errorf("accesses = %d for budget 120k", acc)
	}
	if d.Get(perf.Branches) == 0 {
		t.Error("no branches")
	}
	// Some pivots must have happened: flow cannot be all zero.
	var flowed bool
	for j := uint64(0); j < nw.a && !flowed; j++ {
		flowed = nw.flow.Peek(j) != 0
	}
	if !flowed {
		t.Error("no pivot ever fired (all reduced costs non-negative?)")
	}
}

func TestPivotTerminates(t *testing.T) {
	// Even after many rehangs corrupt depth consistency, pivots stay
	// bounded (the maxPivotSteps guard). Run long enough to exercise
	// rehanging heavily.
	_, nw := newNet(t, 512)
	nw.Run(200_000) // would hang without the bound
}

func TestRegistered(t *testing.T) {
	spec, err := workloads.ByName("mcf-rand")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Suite != "spec2006" {
		t.Errorf("suite = %q", spec.Suite)
	}
}
