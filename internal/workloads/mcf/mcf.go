// Package mcf implements the mcf-rand workload of the paper's Table I: a
// network-simplex-style minimum-cost-flow kernel (the SPEC CPU2006 429.mcf
// access-pattern archetype) on randomly generated networks — the "rand"
// generator the paper's authors wrote themselves.
//
// The kernel alternates a sequential arc-pricing scan with pointer-chasing
// pivots over the spanning tree's parent links, reproducing mcf's
// signature behaviour: enormous random-access node arrays behind a
// streaming arc array, and the highest TLB miss rates of any workload in
// the paper (≈20% of accesses at the largest footprints, §V-C).
package mcf

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// arcsPerNode matches the arc/node ratio of SPEC mcf instances.
const arcsPerNode = 8

// maxPivotSteps bounds the tree walk of one pivot.
const maxPivotSteps = 64

var ladder = []uint64{1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21}

// network is the guest-memory flow network.
type network struct {
	m *machine.Machine
	n uint64 // nodes
	a uint64 // arcs

	// Node arrays (random-access side).
	parent workloads.Array
	depth  workloads.Array
	pot    workloads.Array // node potentials (int64 bits)

	// Arc arrays (streaming side).
	tail workloads.Array
	head workloads.Array
	cost workloads.Array
	flow workloads.Array

	rng *workloads.RNG
}

// newNetwork generates a random instance: a random spanning tree plus
// uniform random arcs with signed costs (untimed setup).
func newNetwork(m *machine.Machine, n uint64) (*network, error) {
	nw := &network{m: m, n: n, a: arcsPerNode * n, rng: workloads.NewRNG(n ^ 0x6d6366)}
	var err error
	for _, p := range []*workloads.Array{&nw.parent, &nw.depth, &nw.pot} {
		if *p, err = workloads.NewArray(m, n); err != nil {
			return nil, err
		}
	}
	for _, p := range []*workloads.Array{&nw.tail, &nw.head, &nw.cost, &nw.flow} {
		if *p, err = workloads.NewArray(m, nw.a); err != nil {
			return nil, err
		}
	}
	// Random tree: parent[i] < i, so depths are well defined.
	nw.parent.Poke(0, 0)
	nw.depth.Poke(0, 0)
	for i := uint64(1); i < n; i++ {
		p := nw.rng.Intn(i)
		nw.parent.Poke(i, p)
		nw.depth.Poke(i, nw.depth.Peek(p)+1)
		nw.pot.Poke(i, nw.rng.Intn(2000))
	}
	for j := uint64(0); j < nw.a; j++ {
		nw.tail.Poke(j, nw.rng.Intn(n))
		nw.head.Poke(j, nw.rng.Intn(n))
		nw.cost.Poke(j, nw.rng.Intn(2000))
	}
	return nw, nil
}

// Run performs pricing sweeps over the arc array, pivoting on candidate
// arcs until the budget expires.
func (nw *network) Run(budget uint64) {
	bud := workloads.NewBudget(nw.m, budget)
	for {
		for j := uint64(0); j < nw.a; j++ {
			t := nw.tail.Get(j)
			h := nw.head.Get(j)
			c := int64(nw.cost.Get(j))
			// Reduced cost needs two random node-array loads — the mcf
			// signature access.
			rc := c - int64(nw.pot.Get(t)) + int64(nw.pot.Get(h))
			nw.m.Ops(4)
			candidate := rc < 0
			nw.m.Branch(0x4D01, candidate)
			if candidate {
				nw.pivot(j, t, h, rc)
			}
			if j&1023 == 0 && bud.Done() {
				return
			}
		}
	}
}

// pivot walks the spanning tree from both arc endpoints towards their
// common ancestor (bounded), updating potentials along the way, then
// adjusts flow and occasionally re-hangs the tree — the simplex basis
// exchange.
func (nw *network) pivot(arc, t, h uint64, rc int64) {
	i, j := t, h
	for step := 0; step < maxPivotSteps; step++ {
		if i == j {
			break
		}
		di := nw.depth.Get(i)
		dj := nw.depth.Get(j)
		deeperI := di > dj
		nw.m.Branch(0x4D02, deeperI)
		switch {
		case deeperI:
			nw.pot.Set(i, uint64(int64(nw.pot.Get(i))-rc))
			i = nw.parent.Get(i)
		case dj > di:
			nw.pot.Set(j, uint64(int64(nw.pot.Get(j))+rc))
			j = nw.parent.Get(j)
		default:
			i = nw.parent.Get(i)
			j = nw.parent.Get(j)
		}
		nw.m.Ops(2)
	}
	nw.flow.Set(arc, nw.flow.Get(arc)+1)
	// Basis exchange: re-hang the tail under the head now and then, so
	// the tree (and future pointer chases) keeps evolving.
	rehang := nw.rng.Intn(16) == 0 && t != h && t != 0
	nw.m.Branch(0x4D03, rehang)
	if rehang {
		nw.parent.Set(t, h)
		nw.depth.Set(t, nw.depth.Get(h)+1)
	}
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "mcf",
		Generator: "rand",
		Suite:     "spec2006",
		Kind:      "network simplex (ST)",
		Ladder:    ladder,
		Build: func(m *machine.Machine, nodes uint64) (workloads.Instance, error) {
			return newNetwork(m, nodes)
		},
	})
}
