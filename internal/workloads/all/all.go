// Package all links every workload implementation into the binary that
// imports it, for its registration side effects.
package all

import (
	_ "atscale/internal/workloads/graph"
	_ "atscale/internal/workloads/kvstore"
	_ "atscale/internal/workloads/mcf"
	_ "atscale/internal/workloads/micro"
	_ "atscale/internal/workloads/streamcluster"
	_ "atscale/internal/workloads/synth"
)
