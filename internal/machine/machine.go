// Package machine assembles the full simulated system — physical memory,
// page tables, TLBs, paging-structure caches, walker, caches, core, and
// the guest OS — behind the small API workloads program against: Malloc,
// Load64/Store64, Ops, and Branch.
//
// Data really lives in simulated physical memory: a Load64 translates the
// virtual address through the simulated MMU (faulting the page in on first
// touch) and reads the word from the translated physical location. The
// workloads are therefore genuinely data-dependent on the simulated memory
// system, which is what lets access-pattern effects (filtering, PTE
// hotness) emerge rather than being scripted.
package machine

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/cpu"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/perf"
	"atscale/internal/scheme"
	"atscale/internal/telemetry"
	"atscale/internal/tlb"
	"atscale/internal/virt"
	"atscale/internal/vm"
	"atscale/internal/walker"
)

// Machine is one simulated single-core system running one process.
type Machine struct {
	cfg    arch.SystemConfig
	phys   *mem.Phys
	as     *vm.AddrSpace
	core   *cpu.Core
	engine walker.Engine

	// inst is the translation-scheme instance behind engine on native
	// non-hashed machines (nil under virt/hashed, which predate the
	// scheme seam); migr, when non-nil, drives the deterministic NUMA
	// thread-migration schedule through it.
	inst scheme.Instance
	migr *migrateState

	// Virtualization layer (nil on native machines). All tenants share
	// hyp's EPT; as always aliases tenants[tenant].
	hyp   *virt.Hypervisor
	gphys *virt.GuestPhys
	//atlint:noreset virt-only: Renew refuses virtualized machines (inst is nil), so the tenant list never crosses a pool reuse
	tenants []*vm.AddrSpace
	//atlint:noreset virt-only: Renew refuses virtualized machines, and SwitchTenant validates the index on every call
	tenant int

	// quiet-access translation cache (setup-phase fast path): a
	// direct-mapped software TLB at 4 KB granularity, indexed by page
	// number. quietPage holds each slot's page base (quietInvalidPage
	// when empty) and quietFrame the matching physical frame base.
	quietPage [quietSlots]arch.VAddr
	//atlint:noreset stale frames cannot match: quietInvalidate (run by Renew) poisons every quietPage sentinel first
	quietFrame [quietSlots]arch.PAddr

	// promo, when non-nil, is the WCPI-guided hugepage promotion policy.
	promo *promoState

	// tracer, when non-nil, observes the workload-visible event stream.
	tracer Tracer

	// sampler is the lazily created user-facing PEBS-style sampler.
	sampler *perf.Sampler

	// interval, when non-nil, streams counter rows every N retired
	// instructions (perf stat -I keyed on instruction count).
	interval *perf.IntervalReader

	// phaseTrk, when non-nil, is the timeline track receiving the
	// workload phase spans (setup / prefault / steady); prefaults counts
	// quietly materialized pages for the phase-boundary counter sample.
	phaseTrk  *telemetry.Track
	prefaults uint64
	// traceProc is the machine's timeline process (nil untraced); the
	// refute checker pins identity violations onto its `refute` track.
	traceProc *telemetry.Process
}

// Tracer observes every workload-level event the machine executes, in
// order — the capture side of trace record/replay. Implementations must
// not call back into the machine.
type Tracer interface {
	// Load observes a retired load of va.
	Load(va arch.VAddr)
	// Store observes a retired store to va.
	Store(va arch.VAddr)
	// Ops observes n non-memory instructions.
	Ops(n uint64)
	// Branch observes a branch at pc with its outcome.
	Branch(pc uint64, taken bool)
	// Malloc observes an allocation and the address it returned.
	Malloc(va arch.VAddr, n uint64)
	// Prefault observes a page quietly materialized during setup.
	Prefault(page arch.VAddr)
}

// SetTracer installs (or, with nil, removes) the event tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// Prefault quietly maps the page containing va (replay of a recorded
// setup-phase materialization).
func (m *Machine) Prefault(va arch.VAddr) { m.quietTranslate(va) }

// New builds a machine from cfg whose heap is backed with the given page
// size policy. seed fixes all randomized model decisions.
func New(cfg arch.SystemConfig, policy arch.PageSize, seed int64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m := &Machine{cfg: cfg}
	m.quietInvalidate()
	m.phys = mem.NewPhysNUMA(cfg.PhysMemBytes, cfg.NUMA.EffectiveNodes())
	caches := cache.NewHierarchy(&m.cfg)

	var as *vm.AddrSpace
	var engine walker.Engine
	var err error
	if cfg.Virt.Enabled {
		// Nested paging: the machine's address space becomes a guest. Its
		// page tables are built in guest-physical memory, so the walker
		// must cross into the EPT dimension to resolve every guest level.
		// The policy argument is the guest OS heap policy; keep the config
		// mirror coherent for reports.
		m.cfg.Virt.GuestPages = policy
		hyp, herr := virt.NewHypervisor(m.phys, cfg.Virt.EPTPages)
		if herr != nil {
			return nil, fmt.Errorf("machine: %w", herr)
		}
		m.hyp = hyp
		m.gphys = virt.NewGuestPhys(hyp, cfg.PhysMemBytes)
		pt, perr := pagetable.New(m.gphys)
		if perr != nil {
			return nil, fmt.Errorf("machine: %w", perr)
		}
		as, err = vm.NewAddrSpaceTables(m.gphys, policy, pt)
		nc := mmucache.NewNested(m.cfg.PSC, m.cfg.Virt.EPTPSC, m.cfg.Virt.NTLBEntries)
		engine = walker.NewNested(m.phys, hyp.Root(), cfg.Virt.EPTPages, nc, caches)
	} else if cfg.PageTable == "hashed" {
		if policy != arch.Page4K {
			return nil, fmt.Errorf("machine: hashed page tables support the 4KB policy only, got %s", policy)
		}
		ht, herr := pagetable.NewHashed(m.phys, 1<<17)
		if herr != nil {
			return nil, fmt.Errorf("machine: %w", herr)
		}
		as, err = vm.NewAddrSpaceTables(m.phys, policy, ht)
		engine = walker.NewHashed(m.phys, caches, ht)
	} else {
		// Native radix machines go through the translation-scheme seam:
		// the configured scheme builds the walk engine over the shared
		// physical memory and data-cache hierarchy.
		sch, serr := scheme.ByName(cfg.Scheme)
		if serr != nil {
			return nil, fmt.Errorf("machine: %w", serr)
		}
		as, err = vm.NewAddrSpaceDepth(m.phys, policy, cfg.PagingLevels)
		if err == nil {
			inst, berr := sch.Build(scheme.Deps{Cfg: &m.cfg, Phys: m.phys, Caches: caches})
			if berr != nil {
				return nil, fmt.Errorf("machine: %w", berr)
			}
			m.inst = inst
			engine = inst
		}
	}
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m.as = as
	m.engine = engine
	tlbs := tlb.NewHierarchy(&m.cfg)
	m.core = cpu.New(&m.cfg, tlbs, caches, engine, seed)
	m.core.SetAddressSpace(as.PageTable().Root(), m.faultHandler(as))
	if m.hyp != nil {
		m.tenants = []*vm.AddrSpace{as}
	}
	if mg, ok := engine.(scheme.Migratory); ok && cfg.NUMA.EffectiveNodes() > 1 {
		every := cfg.NUMA.EffectiveMigrateEvery()
		m.migr = &migrateState{inst: mg, every: every, next: every, nodes: mg.Nodes()}
	}
	return m, nil
}

// migrateState drives the deterministic round-robin NUMA migration
// schedule: after every `every` retired memory accesses the thread hops
// to the next node, flushing its TLBs and per-core walk caches and
// stalling for the OS reschedule cost.
type migrateState struct {
	inst  scheme.Migratory
	every uint64
	next  uint64
	node  int
	nodes int
}

// migrateStallCycles is the modelled OS cost of a thread migration
// (deschedule, cross-node reschedule, cold-start bookkeeping).
const migrateStallCycles = 2000

// maybeMigrate sits on the retired-access path of NUMA machines; a nil
// check otherwise.
func (m *Machine) maybeMigrate() {
	if m.migr == nil || m.core.Accesses() < m.migr.next {
		return
	}
	m.migr.next += m.migr.every
	m.migr.node = (m.migr.node + 1) % m.migr.nodes
	m.migr.inst.SetNode(m.migr.node)
	m.core.FlushTLBs()
	m.core.CountSoftware(perf.NUMAMigrations, 1)
	m.core.Stall(migrateStallCycles)
}

// Poolable reports whether Renew can recycle this machine: any
// scheme-built native machine (the pool keys on the full SystemConfig,
// scheme identity and NUMA shape included, so a renewed machine is only
// ever handed to an identical configuration). Nested and hashed
// machines carry organization-specific state (EPTs, hashed buckets) and
// are rebuilt instead.
func (m *Machine) Poolable() bool { return m.inst != nil }

// Renew returns the machine to the state New(cfg, policy, seed) would
// have produced, reusing the expensive long-lived state — cache and TLB
// arrays, physical backing chunks — instead of reallocating it. The
// page-table allocator is rewound, so the renewed table's pages land at
// the same physical addresses a fresh machine's would, making a renewed
// machine byte-identical to a new one (the flatgold tests hold campaigns
// to that). It reports false — leaving the machine unusable — for
// non-poolable machines.
func (m *Machine) Renew(policy arch.PageSize, seed int64) bool {
	if m.inst == nil {
		return false
	}
	m.phys.Reset()
	if err := m.as.Reset(policy); err != nil {
		return false
	}
	m.inst.Reset()
	if m.migr != nil {
		m.migr.next = m.migr.every
		m.migr.node = 0
	}
	m.core.Reset(seed)
	m.core.SetAddressSpace(m.as.PageTable().Root(), m.as.HandleFault)
	m.quietInvalidate()
	m.promo = nil
	m.tracer = nil
	m.sampler = nil
	m.interval = nil
	m.phaseTrk = nil
	m.prefaults = 0
	m.traceProc = nil
	return true
}

// faultHandler wraps an address space's demand-fault path. On virtualized
// machines it additionally books the EPT violations the guest fault
// induced (first touches of guest-physical blocks) as the ept.violations
// software event; quiet setup-path faults intentionally bypass this.
func (m *Machine) faultHandler(as *vm.AddrSpace) cpu.FaultHandler {
	if m.hyp == nil {
		return as.HandleFault
	}
	return func(va arch.VAddr) (arch.PageSize, error) {
		before := m.hyp.EPTViolations()
		ps, err := as.HandleFault(va)
		if d := m.hyp.EPTViolations() - before; d > 0 {
			m.core.CountSoftware(perf.EPTViolations, d)
		}
		return ps, err
	}
}

// Virtualized reports whether the machine runs under nested paging.
func (m *Machine) Virtualized() bool { return m.hyp != nil }

// Hypervisor exposes the virtualization layer (nil on native machines).
func (m *Machine) Hypervisor() *virt.Hypervisor { return m.hyp }

// AddTenant creates an additional guest address space on a virtualized
// machine — same heap policy, same guest-physical memory, same (shared)
// EPT — and returns its tenant index. The new tenant is not scheduled
// until SwitchTenant selects it.
func (m *Machine) AddTenant() (int, error) {
	if m.hyp == nil {
		return 0, fmt.Errorf("machine: AddTenant on a native machine")
	}
	pt, err := pagetable.New(m.gphys)
	if err != nil {
		return 0, fmt.Errorf("machine: %w", err)
	}
	as, err := vm.NewAddrSpaceTables(m.gphys, m.as.Policy(), pt)
	if err != nil {
		return 0, fmt.Errorf("machine: %w", err)
	}
	m.tenants = append(m.tenants, as)
	return len(m.tenants) - 1, nil
}

// Tenants returns the number of guest address spaces (1 on a freshly
// built virtualized machine, 0 native).
func (m *Machine) Tenants() int { return len(m.tenants) }

// SwitchTenant performs a guest context switch to tenant i: CR3 changes,
// so the TLBs and guest-dimension walk caches flush — but the nTLB and
// EPT paging-structure caches, keyed by guest-physical addresses under
// the shared EPT, stay warm. That retained state is the EPT-sharing
// benefit the multi-tenant sweeps quantify.
func (m *Machine) SwitchTenant(i int) error {
	if m.hyp == nil {
		return fmt.Errorf("machine: SwitchTenant on a native machine")
	}
	if i < 0 || i >= len(m.tenants) {
		return fmt.Errorf("machine: no tenant %d (have %d)", i, len(m.tenants))
	}
	if i == m.tenant {
		return nil
	}
	m.tenant = i
	m.as = m.tenants[i]
	m.quietInvalidate() // quiet cache holds the old tenant's frames
	m.core.SetAddressSpace(m.as.PageTable().Root(), m.faultHandler(m.as))
	return nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() *arch.SystemConfig { return &m.cfg }

// Policy returns the heap backing page size.
func (m *Machine) Policy() arch.PageSize { return m.as.Policy() }

// Malloc allocates n bytes of guest memory.
func (m *Machine) Malloc(n uint64) (arch.VAddr, error) {
	va, err := m.as.Malloc(n)
	if err == nil && m.tracer != nil {
		m.tracer.Malloc(va, n)
	}
	return va, err
}

// MustMalloc allocates or panics; workload setup code uses it.
func (m *Machine) MustMalloc(n uint64) arch.VAddr {
	va, err := m.as.Malloc(n)
	if err != nil {
		panic(err)
	}
	return va
}

// Load64 retires a load instruction reading the 8-byte word at va.
func (m *Machine) Load64(va arch.VAddr) uint64 {
	if m.tracer != nil {
		m.tracer.Load(va)
	}
	m.maybePromote()
	m.maybeMigrate()
	pa := m.core.Load(va)
	m.intervalTick()
	return m.phys.Read64(pa)
}

// Store64 retires a store instruction writing the 8-byte word at va.
func (m *Machine) Store64(va arch.VAddr, v uint64) {
	if m.tracer != nil {
		m.tracer.Store(va)
	}
	m.maybePromote()
	m.maybeMigrate()
	pa := m.core.Store(va)
	m.intervalTick()
	m.phys.Write64(pa, v)
}

// Ops retires n non-memory instructions (address arithmetic, compares,
// ALU work between memory accesses).
func (m *Machine) Ops(n uint64) {
	if m.tracer != nil {
		m.tracer.Ops(n)
	}
	m.core.Ops(n)
	m.intervalTick()
}

// Branch retires a branch instruction at program counter pc with the given
// real outcome.
func (m *Machine) Branch(pc uint64, taken bool) {
	if m.tracer != nil {
		m.tracer.Branch(pc, taken)
	}
	m.core.Branch(pc, taken)
	m.intervalTick()
}

// Counters snapshots the PMU.
func (m *Machine) Counters() perf.Counters { return m.core.Counters() }

// CycleCount returns the core cycle counter — the simulated clock the
// machine's timeline tracks sync to.
func (m *Machine) CycleCount() uint64 { return m.core.CycleCount() }

// EnableTrace attaches the machine to a timeline tracer under the given
// campaign-unique unit name: the walker gets a track per dimension, the
// core a speculation track, and the workload a phase track. A nil tracer
// leaves the machine untraced (every hook stays a pointer compare).
func (m *Machine) EnableTrace(tr *telemetry.Tracer, unit string) {
	if tr == nil {
		return
	}
	p := tr.Process(unit)
	clock := m.core.CycleCount
	if m.inst != nil {
		m.inst.EnableTrace(p, clock)
	} else {
		switch e := m.engine.(type) {
		case *walker.Nested:
			e.SetTrace(p.Track("walker (guest)"), p.Track("walker (ept)"), clock)
		case *walker.Hashed:
			e.SetTrace(p.Track("walker"), clock)
		}
	}
	m.core.SetTrace(p.Track("speculation"))
	m.phaseTrk = p.Track("phases")
	m.traceProc = p
}

// TraceProcess returns the machine's timeline process — nil until
// EnableTrace attaches one. Consumers that add their own tracks (the
// refute checker's violation pins) use it instead of re-resolving the
// unit name against the tracer.
func (m *Machine) TraceProcess() *telemetry.Process { return m.traceProc }

// BeginPhase opens a workload phase span (setup / prefault / steady /
// replay) on the machine's phase track at current core time.
func (m *Machine) BeginPhase(name string) {
	if m.phaseTrk == nil {
		return
	}
	m.phaseTrk.Sync(m.core.CycleCount())
	m.phaseTrk.Begin(name)
}

// EndPhase closes the innermost open phase span, annotating it with the
// cumulative count of quietly prefaulted pages.
func (m *Machine) EndPhase() {
	if m.phaseTrk == nil {
		return
	}
	m.phaseTrk.Sync(m.core.CycleCount())
	m.phaseTrk.Counter("prefaulted_pages", float64(m.prefaults))
	m.phaseTrk.End()
}

// Sampler returns the machine's PEBS-style sampler, creating and
// attaching it with the default ring capacity on first use. Arm events
// on it to start capturing; an unarmed sampler costs one len check per
// hook site and perturbs nothing.
func (m *Machine) Sampler() *perf.Sampler {
	if m.sampler == nil {
		m.sampler = perf.NewSampler(perf.DefaultSampleCapacity)
		m.core.AttachSampler(m.sampler)
	}
	return m.sampler
}

// AttachSampler attaches an externally built sampler (custom ring
// capacity, filters) to the datapath's sampling hooks.
func (m *Machine) AttachSampler(s *perf.Sampler) { m.core.AttachSampler(s) }

// StartIntervals begins interval counter streaming: one row of counter
// deltas per `every` retired instructions, the simulator's
// `perf stat -I`. It returns the reader; StopIntervals (or the reader's
// Flush) closes the final partial window.
func (m *Machine) StartIntervals(every uint64) (*perf.IntervalReader, error) {
	r, err := perf.NewIntervalReader(m.core.Counters, every)
	if err != nil {
		return nil, err
	}
	m.interval = r
	return r, nil
}

// StopIntervals flushes the open window, detaches the reader, and
// returns the timeline. Nil if interval streaming was never started.
func (m *Machine) StopIntervals() []perf.IntervalRow {
	if m.interval == nil {
		return nil
	}
	m.interval.Flush()
	rows := m.interval.Rows()
	m.interval = nil
	return rows
}

// intervalTick sits on every machine-level event; it is a nil check
// until streaming is on, then a compare until the boundary passes.
func (m *Machine) intervalTick() {
	if m.interval != nil {
		m.interval.Tick(m.core.Instructions())
	}
}

// Accesses returns the retired loads+stores so far — a cheap progress
// gauge workloads use to honour their operation budget.
func (m *Machine) Accesses() uint64 { return m.core.Accesses() }

// Poke64 writes the word at va without simulating the access: no
// instructions, cycles, TLB or cache state change. The page is mapped
// quietly if needed. Workload *setup* (input generation) uses Poke/Peek;
// it corresponds to the paper's untimed warmup run, keeping input
// construction out of the measured region.
func (m *Machine) Poke64(va arch.VAddr, v uint64) {
	m.phys.Write64(m.quietTranslate(va), v)
}

// Peek64 reads the word at va without simulating the access.
func (m *Machine) Peek64(va arch.VAddr) uint64 {
	return m.phys.Read64(m.quietTranslate(va))
}

// quietSlots sizes the quiet translation cache (a power of two; 4096
// slots cover 16 MB of setup working set per fill).
const quietSlots = 4096

// quietInvalidPage marks an empty quiet-cache slot (never a real page
// base: page bases are 4 KB aligned).
const quietInvalidPage = ^arch.VAddr(0)

// quietInvalidate empties the quiet translation cache. Every event that
// can remap an existing page — tenant switch, hugepage promotion,
// machine renewal — must pass through here or quiet accesses would read
// stale frames.
func (m *Machine) quietInvalidate() {
	for i := range m.quietPage {
		m.quietPage[i] = quietInvalidPage
	}
}

func (m *Machine) quietTranslate(va arch.VAddr) arch.PAddr {
	// Direct-mapped translation cache at 4 KB granularity: setup code
	// pokes with high page locality, so this removes the software walk
	// from almost every quiet access.
	page := arch.PageBase(va, arch.Page4K)
	slot := (uint64(va) >> arch.PageShift4K) & (quietSlots - 1)
	if m.quietPage[slot] == page {
		return m.quietFrame[slot] + arch.PAddr(va-page)
	}
	pa, _, ok := m.as.PageTable().Lookup(va)
	if !ok {
		if _, err := m.as.HandleFault(va); err != nil {
			panic(fmt.Sprintf("machine: quiet access to unmapped %#x: %v", uint64(va), err))
		}
		m.prefaults++
		if m.tracer != nil {
			m.tracer.Prefault(page)
		}
		pa, _, ok = m.as.PageTable().Lookup(va)
		if !ok {
			panic("machine: fault handler did not map page")
		}
	}
	if m.hyp != nil {
		// The guest page table yielded a guest-physical address; compose
		// with the EPT to reach the host bytes (backing is eager, so a
		// mapped gPA always translates).
		hpa, hok := m.hyp.Translate(pa)
		if !hok {
			panic(fmt.Sprintf("machine: mapped gPA %#x not EPT-backed", uint64(pa)))
		}
		pa = hpa
	}
	m.quietPage[slot] = page
	m.quietFrame[slot] = pa - arch.PAddr(va-page)
	return pa
}

// Footprint is the program's memory footprint (malloc'd bytes, 4 KB
// rounded), the quantity the paper indexes every plot by.
func (m *Machine) Footprint() uint64 { return m.as.AllocatedBytes() }

// MappedBytes is the demand-mapped guest memory.
func (m *Machine) MappedBytes() uint64 { return m.as.MappedBytes() }

// PageTableBytes is the guest physical memory spent on page-table pages.
func (m *Machine) PageTableBytes() uint64 { return m.as.PageTable().TableBytes() }

// AddressSpace exposes the guest OS memory manager (tests, tools).
func (m *Machine) AddressSpace() *vm.AddrSpace { return m.as }
