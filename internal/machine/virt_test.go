package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

func newVirtM(t *testing.T, guest, ept arch.PageSize) *Machine {
	t.Helper()
	cfg := arch.DefaultSystem()
	cfg.Virt = arch.DefaultVirt()
	cfg.Virt.EPTPages = ept
	m, err := New(cfg, guest, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestVirtMemoryConsistencyOracle is the end-to-end correctness property
// under nested paging: loads and stores through the 2D translation stack
// must never scramble or alias data, for every guest x EPT page-size
// combination the sweeps use.
func TestVirtMemoryConsistencyOracle(t *testing.T) {
	for _, tc := range []struct{ guest, ept arch.PageSize }{
		{arch.Page4K, arch.Page4K},
		{arch.Page4K, arch.Page2M},
		{arch.Page2M, arch.Page4K},
		{arch.Page2M, arch.Page1G},
	} {
		t.Run(tc.guest.String()+"/"+tc.ept.String(), func(t *testing.T) {
			m := newVirtM(t, tc.guest, tc.ept)
			if !m.Virtualized() {
				t.Fatal("machine not virtualized")
			}
			rng := rand.New(rand.NewSource(7))
			base := m.MustMalloc(8 * arch.MB)
			oracle := map[arch.VAddr]uint64{}
			for i := 0; i < 10000; i++ {
				va := base + arch.VAddr(rng.Uint64()%(8*arch.MB/8)*8)
				if rng.Intn(2) == 0 {
					v := rng.Uint64()
					m.Store64(va, v)
					oracle[va] = v
				} else if got, want := m.Load64(va), oracle[va]; got != want {
					t.Fatalf("load %#x = %#x, want %#x", uint64(va), got, want)
				}
			}
			// Poke/Peek must agree with the simulated path too.
			for va, want := range oracle {
				if got := m.Peek64(va); got != want {
					t.Fatalf("peek %#x = %#x, want %#x", uint64(va), got, want)
				}
				break
			}
		})
	}
}

// TestVirtCounterInvariants checks the nested event family: the
// guest/EPT walk-duration split sums to walk_duration, EPT activity is
// visible, violations were booked, and the Eq1 product still equals
// WCPI with EPT loads folded into the walker-load total.
func TestVirtCounterInvariants(t *testing.T) {
	m := newVirtM(t, arch.Page4K, arch.Page4K)
	rng := rand.New(rand.NewSource(9))
	base := m.MustMalloc(32 * arch.MB)
	for i := 0; i < 30000; i++ {
		m.Load64(base + arch.VAddr(rng.Uint64()%(32*arch.MB/8)*8))
	}
	c := m.Counters()

	dur := c.Get(perf.DTLBLoadWalkDuration) + c.Get(perf.DTLBStoreWalkDuration)
	guest := c.Get(perf.DTLBLoadWalkDurationGuest) + c.Get(perf.DTLBStoreWalkDurationGuest)
	ept := c.Get(perf.EPTWalkDuration)
	if dur == 0 {
		t.Fatal("no walk cycles accrued")
	}
	if guest+ept != dur {
		t.Errorf("walk_duration split: guest %d + ept %d != total %d", guest, ept, dur)
	}
	if ept == 0 {
		t.Error("no EPT walk cycles under 4KB/4KB nested paging")
	}
	for _, e := range []perf.Event{
		perf.EPTMissWalk, perf.EPTWalkCompleted, perf.EPTWalkSTLBHit,
		perf.EPTWalkerLoadsMem, perf.EPTViolations,
	} {
		if c.Get(e) == 0 {
			t.Errorf("%s = 0, want > 0", e)
		}
	}

	mt := perf.Compute(c)
	if mt.EPTWalkCycles+mt.GuestWalkCycles != mt.WalkCycles {
		t.Errorf("Metrics split %d+%d != %d", mt.EPTWalkCycles, mt.GuestWalkCycles, mt.WalkCycles)
	}
	if p := mt.Eq1.Product(); !closeEnough(p, mt.WCPI) {
		t.Errorf("Eq1 product %g != WCPI %g", p, mt.WCPI)
	}
	if mt.NTLBHitRate <= 0 || mt.NTLBHitRate >= 1 {
		t.Errorf("nTLB hit rate = %v, want in (0,1)", mt.NTLBHitRate)
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	s := a
	if b > s {
		s = b
	}
	return d <= 1e-9*s
}

// TestNativeCountersKeepGuestInvariant: on a native machine the guest
// split must equal the full duration (walks have no EPT share) and the
// ept_* family stays zero.
func TestNativeCountersKeepGuestInvariant(t *testing.T) {
	m := newM(t, arch.Page4K)
	rng := rand.New(rand.NewSource(9))
	base := m.MustMalloc(16 * arch.MB)
	for i := 0; i < 10000; i++ {
		m.Load64(base + arch.VAddr(rng.Uint64()%(16*arch.MB/8)*8))
	}
	c := m.Counters()
	dur := c.Get(perf.DTLBLoadWalkDuration) + c.Get(perf.DTLBStoreWalkDuration)
	guest := c.Get(perf.DTLBLoadWalkDurationGuest) + c.Get(perf.DTLBStoreWalkDurationGuest)
	if dur == 0 || guest != dur {
		t.Errorf("native guest split %d != walk_duration %d", guest, dur)
	}
	for _, e := range []perf.Event{perf.EPTMissWalk, perf.EPTWalkDuration, perf.EPTViolations} {
		if c.Get(e) != 0 {
			t.Errorf("native machine counted %s = %d", e, c.Get(e))
		}
	}
}

// TestMultiTenantEPTSharing runs two tenants round-robin and checks the
// machinery: tenant switches flush guest state but keep the shared EPT
// dimension warm, and the tenants' data stays isolated.
func TestMultiTenantEPTSharing(t *testing.T) {
	m := newVirtM(t, arch.Page4K, arch.Page4K)
	second, err := m.AddTenant()
	if err != nil {
		t.Fatal(err)
	}
	if m.Tenants() != 2 {
		t.Fatalf("tenants = %d", m.Tenants())
	}

	// Tenant 0 writes its pattern.
	base0 := m.MustMalloc(1 * arch.MB)
	for off := uint64(0); off < arch.MB; off += 4096 {
		m.Store64(base0+arch.VAddr(off), 0xAAAA_0000+off)
	}

	if err := m.SwitchTenant(second); err != nil {
		t.Fatal(err)
	}
	// Tenant 1 has its own address space: same VA range starts unmapped,
	// and its heap often lands on the same VAs without aliasing tenant 0.
	base1 := m.MustMalloc(1 * arch.MB)
	for off := uint64(0); off < arch.MB; off += 4096 {
		m.Store64(base1+arch.VAddr(off), 0xBBBB_0000+off)
	}

	if err := m.SwitchTenant(0); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < arch.MB; off += 4096 {
		if got := m.Load64(base0 + arch.VAddr(off)); got != 0xAAAA_0000+off {
			t.Fatalf("tenant 0 data clobbered at +%#x: %#x", off, got)
		}
	}

	// Both tenants draw from one hypervisor: guest table pages and data
	// of both are EPT-backed by the same shared table.
	if m.Hypervisor().HostMappedBytes() < 2*arch.MB {
		t.Errorf("host mapped %d, want >= both tenants' heaps", m.Hypervisor().HostMappedBytes())
	}

	if err := m.SwitchTenant(99); err == nil {
		t.Error("SwitchTenant(99) accepted")
	}
}

// TestNativeMachineRejectsTenantAPI pins the API contract on native
// machines.
func TestNativeMachineRejectsTenantAPI(t *testing.T) {
	m := newM(t, arch.Page4K)
	if m.Virtualized() || m.Hypervisor() != nil || m.Tenants() != 0 {
		t.Error("native machine claims virtualization state")
	}
	if _, err := m.AddTenant(); err == nil {
		t.Error("AddTenant on native machine accepted")
	}
	if err := m.SwitchTenant(0); err == nil {
		t.Error("SwitchTenant on native machine accepted")
	}
}
