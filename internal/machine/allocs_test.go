package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

// TestSteadyStateZeroAllocs pins the hot-path refactor's allocation
// contract: once a machine's working set is faulted in, the per-access
// path — translate, walk, cache access, speculation — performs zero heap
// allocations, natively and under nested paging. Any regression here
// shows up as GC pressure multiplied by every campaign the ROADMAP
// plans.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Machine
	}{
		{"native-4k", func(t *testing.T) *Machine {
			t.Helper()
			m, err := New(arch.DefaultSystem(), arch.Page4K, 1)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"native-2m", func(t *testing.T) *Machine {
			t.Helper()
			m, err := New(arch.DefaultSystem(), arch.Page2M, 1)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"virt-ept2m", func(t *testing.T) *Machine {
			t.Helper()
			return newVirtM(t, arch.Page4K, arch.Page2M)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.build(t)
			const n = 64 * arch.MB
			va := m.MustMalloc(n)
			for off := uint64(0); off < n; off += 4096 {
				m.Poke64(va+arch.VAddr(off), off)
			}
			rng := rand.New(rand.NewSource(2))
			words := uint64(n / 8)
			step := func() {
				off := arch.VAddr(rng.Uint64() % words * 8)
				m.Load64(va + off)
				m.Store64(va+off, 1)
				m.Ops(2)
				m.Branch(uint64(off)&0x3ff, rng.Intn(2) == 0)
			}
			// Warm the translation path (TLB fills, PSC fills, demand
			// walks over already-mapped pages) before measuring.
			for i := 0; i < 2000; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(200, step); avg != 0 {
				t.Errorf("steady-state access path allocates %.2f allocs/op, want 0", avg)
			}
		})
	}
}

// TestRenewMatchesFresh is the machine-pool correctness contract in
// miniature: a renewed machine must produce exactly the counter file a
// freshly built machine with the same config, policy, and seed produces,
// even when the pooled machine previously ran a different policy with a
// different seed.
func TestRenewMatchesFresh(t *testing.T) {
	run := func(m *Machine, seed int64) perf.Counters {
		rng := rand.New(rand.NewSource(seed))
		va := m.MustMalloc(16 * arch.MB)
		words := uint64(16 * arch.MB / 8)
		for i := 0; i < 30000; i++ {
			off := arch.VAddr(rng.Uint64() % words * 8)
			switch rng.Intn(4) {
			case 0:
				m.Store64(va+off, rng.Uint64())
			case 1:
				m.Ops(3)
			case 2:
				m.Branch(uint64(off)&0xffff, rng.Intn(3) == 0)
			default:
				m.Load64(va + off)
			}
		}
		return m.Counters()
	}
	cfg := arch.DefaultSystem()
	fresh, err := New(cfg, arch.Page2M, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh, 3)

	pooled, err := New(cfg, arch.Page4K, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !pooled.Poolable() {
		t.Fatal("native radix machine not poolable")
	}
	run(pooled, 11) // dirty every subsystem under the other policy
	if !pooled.Renew(arch.Page2M, 7) {
		t.Fatal("Renew failed on a poolable machine")
	}
	if got := run(pooled, 3); got != want {
		t.Errorf("renewed machine diverges from fresh build:\nfresh:\n%s\nrenewed:\n%s",
			want.Format(), got.Format())
	}
}

// TestRenewRefusesNonNative pins the pool's gating: nested-paging and
// hashed-table machines are rebuilt, never recycled.
func TestRenewRefusesNonNative(t *testing.T) {
	m := newVirtM(t, arch.Page4K, arch.Page2M)
	if m.Poolable() {
		t.Error("virtualized machine reports poolable")
	}
	if m.Renew(arch.Page4K, 1) {
		t.Error("Renew accepted a virtualized machine")
	}
}
