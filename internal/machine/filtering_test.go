package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

// TestTLBFilteringEffect checks the paper's §V-C observation directly:
// a higher TLB hit rate can *lengthen* page table walks, because the TLB
// filters the well-behaved part of the access pattern away from the MMU
// caches.
//
// The stream interleaves a dense component (round-robin over one 2 MB
// region — excellent PDE-cache locality) with a sparse component (uniform
// over 512 MB — PDE-cache hostile), 7:1. With a large STLB the dense
// component translates in the TLB and the walker sees only the sparse
// residue (long walks); with the STLB disabled the walker sees the dense
// component too, and the average walk shortens.
func TestTLBFilteringEffect(t *testing.T) {
	loadsPerWalk := func(stlbEntries int) float64 {
		cfg := arch.DefaultSystem()
		cfg.STLB.Entries = stlbEntries
		m, err := New(cfg, arch.Page4K, 11)
		if err != nil {
			t.Fatal(err)
		}
		const bytes = uint64(512 * arch.MB)
		va := m.MustMalloc(bytes)
		// Pre-fault the dense region; sparse pages fault on first touch
		// (loads only, so cheap).
		densePages := uint64(512) // one 2MB-aligned stretch of the heap
		denseBase := arch.VAddr(arch.AlignUp(uint64(va), arch.Page2M.Bytes()))
		for p := uint64(0); p < densePages; p++ {
			m.Poke64(denseBase+arch.VAddr(p*4096), 1)
		}
		rng := rand.New(rand.NewSource(5))
		dense := uint64(0)
		for i := 0; i < 400_000; i++ {
			if i%8 == 7 {
				m.Load64(va + arch.VAddr(rng.Uint64()%(bytes/8)*8))
			} else {
				m.Load64(denseBase + arch.VAddr(dense*4096))
				dense = (dense + 1) % densePages
			}
		}
		met := perf.Compute(m.Counters())
		if met.Walks == 0 {
			t.Fatal("no walks")
		}
		return met.Eq1.WalkerLoadsPerWalk
	}
	filtered := loadsPerWalk(1024) // dense component absorbed by the STLB
	unfiltered := loadsPerWalk(0)  // walker sees the dense component too
	if unfiltered >= filtered*0.95 {
		t.Errorf("filtering effect absent: loads/walk %.3f (big STLB) vs %.3f (no STLB); "+
			"expected clearly more loads per walk under stronger TLB filtering", filtered, unfiltered)
	}
}
