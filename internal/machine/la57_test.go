package machine

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

func la57Config() arch.SystemConfig {
	cfg := arch.DefaultSystem()
	cfg.PagingLevels = 5
	return cfg
}

func TestLA57MachineRoundTrip(t *testing.T) {
	m, err := New(la57Config(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	va := m.MustMalloc(arch.MB)
	m.Store64(va+64, 99)
	if m.Load64(va+64) != 99 {
		t.Error("LA57 machine lost data")
	}
}

func TestLA57WalksAreLonger(t *testing.T) {
	loads := func(levels int) uint64 {
		cfg := arch.DefaultSystem()
		cfg.PagingLevels = levels
		// Disable the PSCs so every walk runs full depth.
		cfg.PSC = arch.PSCGeometry{}
		m, err := New(cfg, arch.Page4K, 1)
		if err != nil {
			t.Fatal(err)
		}
		va := m.MustMalloc(64 * arch.MB)
		// Touch pages quietly, then walk them all once (each access is a
		// TLB miss: 16K pages >> STLB).
		for off := uint64(0); off < 64*arch.MB; off += 4096 {
			m.Poke64(va+arch.VAddr(off), 1)
		}
		start := m.Counters()
		for off := uint64(0); off < 64*arch.MB; off += 4096 {
			m.Load64(va + arch.VAddr(off))
		}
		d := perf.Delta(start, m.Counters())
		return d.Get(perf.WalkerLoadsL1) + d.Get(perf.WalkerLoadsL2) +
			d.Get(perf.WalkerLoadsL3) + d.Get(perf.WalkerLoadsMem)
	}
	l4, l5 := loads(4), loads(5)
	// 5-level walks do 5/4 the loads of 4-level walks.
	lo, hi := l4*115/100, l4*135/100
	if l5 < lo || l5 > hi {
		t.Errorf("walker loads: 4-level %d, 5-level %d; want ~%d", l4, l5, l4*125/100)
	}
}

func TestInvalidDepthRejected(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.PagingLevels = 6
	if _, err := New(cfg, arch.Page4K, 1); err == nil {
		t.Error("6-level paging accepted")
	}
	cfg.PagingLevels = 0
	if _, err := New(cfg, arch.Page4K, 1); err == nil {
		t.Error("0-level paging accepted")
	}
}
