package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

// schemeTestConfigs enumerates one config per translation scheme, NUMA
// variants included.
func schemeTestConfigs() map[string]arch.SystemConfig {
	radix := arch.DefaultSystem()

	numa := arch.DefaultSystem()
	numa.NUMA.Nodes = 2
	numa.NUMA.MigrateEvery = 10_000

	victima := arch.DefaultSystem()
	victima.Scheme = "victima"

	mitosis := arch.DefaultSystem()
	mitosis.Scheme = "mitosis"
	mitosis.NUMA.Nodes = 2
	mitosis.NUMA.MigrateEvery = 10_000

	dram := arch.DefaultSystem()
	dram.Scheme = "dramcache"

	return map[string]arch.SystemConfig{
		"radix": radix, "radix-numa2": numa, "victima": victima,
		"mitosis": mitosis, "dramcache": dram,
	}
}

func runSchemeWorkload(m *Machine, seed int64) perf.Counters {
	rng := rand.New(rand.NewSource(seed))
	va := m.MustMalloc(16 * arch.MB)
	words := uint64(16 * arch.MB / 8)
	for i := 0; i < 25000; i++ {
		off := arch.VAddr(rng.Uint64() % words * 8)
		switch rng.Intn(4) {
		case 0:
			m.Store64(va+off, rng.Uint64())
		case 1:
			m.Ops(3)
		case 2:
			m.Branch(uint64(off)&0xffff, rng.Intn(3) == 0)
		default:
			m.Load64(va + off)
		}
	}
	return m.Counters()
}

// TestRenewMatchesFreshPerScheme extends the machine-pool contract to
// every scheme backend: a renewed machine under any scheme must be
// byte-identical to a freshly built one, even after previously running a
// different policy and seed.
func TestRenewMatchesFreshPerScheme(t *testing.T) {
	for name, cfg := range schemeTestConfigs() {
		t.Run(name, func(t *testing.T) {
			fresh, err := New(cfg, arch.Page2M, 7)
			if err != nil {
				t.Fatal(err)
			}
			want := runSchemeWorkload(fresh, 3)

			pooled, err := New(cfg, arch.Page4K, 99)
			if err != nil {
				t.Fatal(err)
			}
			if !pooled.Poolable() {
				t.Fatalf("%s machine not poolable", name)
			}
			runSchemeWorkload(pooled, 11) // dirty every subsystem
			if !pooled.Renew(arch.Page2M, 7) {
				t.Fatal("Renew failed on a poolable machine")
			}
			if got := runSchemeWorkload(pooled, 3); got != want {
				t.Errorf("renewed %s machine diverges from fresh build:\nfresh:\n%s\nrenewed:\n%s",
					name, want.Format(), got.Format())
			}
		})
	}
}

// TestSchemeConfigKeysDiffer pins the pool-keying satellite: configs
// that differ only in scheme identity or NUMA shape compare unequal, so
// the machine pool can never hand a machine built for one scheme to a
// run unit of another.
func TestSchemeConfigKeysDiffer(t *testing.T) {
	cfgs := schemeTestConfigs()
	var names []string
	for name := range cfgs {
		names = append(names, name)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if cfgs[a] == cfgs[b] {
				t.Errorf("configs %s and %s compare equal; pool keying cannot distinguish them", a, b)
			}
		}
	}
	// And the machine reports the config it was built with, scheme
	// fields intact.
	cfg := cfgs["mitosis"]
	m, err := New(cfg, arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	if *m.Config() != cfg {
		t.Errorf("Config() = %+v, want the construction config", *m.Config())
	}
}

// TestNUMAMigrationSchedule pins the deterministic migration driver:
// a NUMA machine migrates on the configured access cadence, books the
// software event, and two identical runs agree exactly.
func TestNUMAMigrationSchedule(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.Scheme = "mitosis"
	cfg.NUMA.Nodes = 2
	cfg.NUMA.MigrateEvery = 5_000

	run := func() perf.Counters {
		m, err := New(cfg, arch.Page4K, 42)
		if err != nil {
			t.Fatal(err)
		}
		return runSchemeWorkload(m, 5)
	}
	a := run()
	if a.Get(perf.NUMAMigrations) == 0 {
		t.Fatal("no migrations on a 5k-access cadence")
	}
	if a.Get(perf.ReplicaLocalWalks)+a.Get(perf.ReplicaRemoteWalks) == 0 {
		t.Fatal("mitosis walks were never classified")
	}
	if b := run(); a != b {
		t.Errorf("identical NUMA runs diverge:\n%s\nvs\n%s", a.Format(), b.Format())
	}
}

// TestUMAMachineNeverMigrates: without NUMA nodes the migration driver
// must stay disarmed whatever the cadence says.
func TestUMAMachineNeverMigrates(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.NUMA.MigrateEvery = 1_000
	m, err := New(cfg, arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := runSchemeWorkload(m, 2)
	if c.Get(perf.NUMAMigrations) != 0 {
		t.Errorf("UMA machine migrated %d times", c.Get(perf.NUMAMigrations))
	}
}
