package machine

import (
	"atscale/internal/arch"
	"atscale/internal/perf"
)

// This file implements the WCPI-guided hugepage promotion policy the
// paper's discussion proposes ("using WCPI as a heuristic to guide huge
// page allocation ... in the operating system would be worthy of further
// investigation"): a khugepaged analogue that watches walk cycles per
// instruction online and collapses the walk-hottest 2 MB blocks to
// superpages when translation pressure is high.

// PromotionConfig parameterizes the policy.
type PromotionConfig struct {
	// Epoch is the decision interval in retired accesses.
	Epoch uint64
	// WCPIThreshold gates promotion: blocks are only collapsed while the
	// epoch's walk cycles per instruction exceed it.
	WCPIThreshold float64
	// MaxPerEpoch bounds promotions per decision (copy-bandwidth cap).
	MaxPerEpoch int
	// CostCycles is the visible stall charged per promotion (page copy
	// plus TLB shootdown; most of khugepaged's work is off-core, so this
	// is far below the full copy time).
	CostCycles uint64
}

// DefaultPromotionConfig returns a policy tuned like a conservative
// khugepaged: check every 32K accesses, act above 0.02 WCPI, at most four
// collapses per epoch.
func DefaultPromotionConfig() PromotionConfig {
	return PromotionConfig{
		Epoch:         32 * 1024,
		WCPIThreshold: 0.02,
		MaxPerEpoch:   4,
		CostCycles:    12_000,
	}
}

// promoState is the live policy state.
type promoState struct {
	cfg      PromotionConfig
	last     perf.Counters
	sinceAcc uint64
	// smp is the policy's private PEBS-style sampler: demand walks at
	// period 1, drained every epoch for hot-block attribution.
	smp *perf.Sampler
}

// promoSampleCapacity sizes the policy sampler's ring. An epoch issues
// at most Epoch demand walks (one per retired access), so the default
// 32 Ki-access epoch cannot overflow; far larger epochs degrade to a
// sampled (rather than exact) heat signal, which the policy tolerates.
const promoSampleCapacity = 1 << 17

// block2MShift is log2 of the 2 MB promotion granularity, the block size
// HotBlocks aggregates walk samples at.
const block2MShift = 21

// EnablePromotion switches the WCPI-guided promotion policy on. Only
// meaningful for machines with a 4 KB heap policy (superpage-backed heaps
// have nothing to promote).
func (m *Machine) EnablePromotion(cfg PromotionConfig) {
	if cfg.Epoch == 0 {
		cfg = DefaultPromotionConfig()
	}
	// The hotness signal is the sampling subsystem: a private sampler
	// armed on demand walks (outcome-retired filter excludes wrong-path
	// and aborted speculation) at period 1, i.e. every demand walk.
	smp := perf.NewSampler(promoSampleCapacity)
	smp.SetFilter(func(s perf.Sample) bool { return s.Outcome == perf.OutcomeRetired })
	if err := smp.Arm(perf.DTLBLoadMissWalk, 1); err != nil {
		panic(err)
	}
	if err := smp.Arm(perf.DTLBStoreMissWalk, 1); err != nil {
		panic(err)
	}
	m.core.AttachSampler(smp)
	m.promo = &promoState{cfg: cfg, last: m.core.Counters(), smp: smp}
}

// Promotions returns how many 2 MB blocks the policy has collapsed.
func (m *Machine) Promotions() uint64 { return m.as.Promotions() }

// promoTick runs once per epoch: measure the epoch's WCPI and, if
// translation pressure is high, collapse the walk-hottest blocks.
func (m *Machine) promoTick() {
	p := m.promo
	cur := m.core.Counters()
	delta := perf.Delta(p.last, cur)
	p.last = cur

	inst := delta.Get(perf.InstRetired)
	if inst == 0 {
		return
	}
	walkCycles := delta.Get(perf.DTLBLoadWalkDuration) + delta.Get(perf.DTLBStoreWalkDuration)
	wcpi := float64(walkCycles) / float64(inst)

	// Drain the sampler every epoch (stale heat should not trigger
	// promotions many epochs later) and attribute walks to 2 MB blocks.
	hotBlocks := perf.HotBlocks(p.smp.Drain(), block2MShift, p.cfg.MaxPerEpoch)
	if wcpi < p.cfg.WCPIThreshold {
		return
	}
	for _, b := range hotBlocks {
		block := arch.VAddr(b)
		if !m.as.CanPromote(block) {
			continue
		}
		if err := m.as.Promote(block); err != nil {
			continue // e.g. out of 2MB frames: skip, try again later
		}
		// TLB shootdown for the collapsed range plus the stale PDE
		// pointer in the paging-structure caches.
		for off := uint64(0); off < arch.Page2M.Bytes(); off += arch.Page4K.Bytes() {
			m.core.InvalidateTranslation(block+arch.VAddr(off), arch.Page4K)
		}
		m.core.InvalidatePDE(block)
		m.core.Stall(p.cfg.CostCycles)
		m.core.CountSoftware(perf.THPPromotions, 1)
		// The promoted translation will be reloaded by the next access's
		// walk; quiet-access translations must not go stale either.
		m.quietInvalidate()
	}
}

// maybePromote is called from the hot access path; it is two compares in
// the common case.
func (m *Machine) maybePromote() {
	p := m.promo
	if p == nil {
		return
	}
	p.sinceAcc++
	if p.sinceAcc >= p.cfg.Epoch {
		p.sinceAcc = 0
		m.promoTick()
	}
}
