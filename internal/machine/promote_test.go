package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

// promoMachine builds a 4K machine with promotion enabled and a hot
// random working set.
func promoMachine(t *testing.T) (*Machine, arch.VAddr, uint64) {
	t.Helper()
	m, err := New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.EnablePromotion(DefaultPromotionConfig())
	const bytes = 64 * arch.MB // way beyond STLB reach
	va := m.MustMalloc(bytes)
	return m, va, bytes
}

func TestPromotionTriggersUnderPressure(t *testing.T) {
	m, va, bytes := promoMachine(t)
	words := bytes / 8
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 800_000; i++ {
		m.Load64(va + arch.VAddr(rng.Uint64()%words*8))
	}
	if m.Promotions() == 0 {
		t.Fatal("no promotions under heavy translation pressure")
	}
	if got := m.Counters().Get(perf.THPPromotions); got != m.Promotions() {
		t.Errorf("counter %d != vm promotions %d", got, m.Promotions())
	}
}

func TestPromotionPreservesData(t *testing.T) {
	m, va, bytes := promoMachine(t)
	words := bytes / 8
	rng := rand.New(rand.NewSource(3))
	oracle := map[arch.VAddr]uint64{}
	for i := 0; i < 400_000; i++ {
		a := va + arch.VAddr(rng.Uint64()%words*8)
		if rng.Intn(3) == 0 {
			v := rng.Uint64()
			m.Store64(a, v)
			oracle[a] = v
		} else {
			want := oracle[a]
			if got := m.Load64(a); got != want {
				t.Fatalf("Load64(%#x) = %#x, want %#x (promotions so far: %d)",
					uint64(a), got, want, m.Promotions())
			}
		}
	}
	if m.Promotions() == 0 {
		t.Skip("no promotion happened; data check vacuous")
	}
	// Every oracle entry must still read back correctly after all the
	// collapses.
	for a, want := range oracle {
		if got := m.Peek64(a); got != want {
			t.Fatalf("Peek64(%#x) = %#x, want %#x after promotions", uint64(a), got, want)
		}
	}
}

func TestPromotionReducesWalkPressure(t *testing.T) {
	run := func(promote bool) float64 {
		m, err := New(arch.DefaultSystem(), arch.Page4K, 1)
		if err != nil {
			t.Fatal(err)
		}
		if promote {
			m.EnablePromotion(DefaultPromotionConfig())
		}
		const bytes = uint64(64 * arch.MB)
		va := m.MustMalloc(bytes)
		words := bytes / 8
		rng := rand.New(rand.NewSource(4))
		// Warm phase lets the policy converge, then measure.
		for i := 0; i < 600_000; i++ {
			m.Load64(va + arch.VAddr(rng.Uint64()%words*8))
		}
		start := m.Counters()
		for i := 0; i < 200_000; i++ {
			m.Load64(va + arch.VAddr(rng.Uint64()%words*8))
		}
		return perf.Compute(perf.Delta(start, m.Counters())).WCPI
	}
	base, promoted := run(false), run(true)
	if promoted > base/2 {
		t.Errorf("promotion left WCPI at %.4f vs baseline %.4f; want >=2x reduction", promoted, base)
	}
}

func TestPromotionIdleWhenPressureLow(t *testing.T) {
	m, err := New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.EnablePromotion(DefaultPromotionConfig())
	va := m.MustMalloc(256 * arch.KB) // TLB-resident working set
	for i := 0; i < 300_000; i++ {
		m.Load64(va + arch.VAddr(i%(256*1024/8)*8))
	}
	if m.Promotions() != 0 {
		t.Errorf("%d promotions despite negligible walk pressure", m.Promotions())
	}
}

func TestVMPromoteMechanics(t *testing.T) {
	m, err := New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	as := m.AddressSpace()
	va := m.MustMalloc(8 * arch.MB)
	block := arch.VAddr(arch.AlignUp(uint64(va), arch.Page2M.Bytes()))
	// Touch a few pages inside the block.
	m.Poke64(block+0x1000, 0xAA)
	m.Poke64(block+1*arch.MB, 0xBB)
	if !as.CanPromote(block) {
		t.Fatal("block not promotable")
	}
	if err := as.Promote(block); err != nil {
		t.Fatal(err)
	}
	if as.CanPromote(block) {
		t.Error("block still promotable after promotion")
	}
	if err := as.Promote(block); err == nil {
		t.Error("double promotion succeeded")
	}
	// Mapping must now be a single 2MB page, with data intact and holes
	// still zero.
	_, ps, ok := as.PageTable().Lookup(block + 0x1000)
	if !ok || ps != arch.Page2M {
		t.Fatalf("post-promotion mapping = %v, %v", ps, ok)
	}
	if m.Peek64(block+0x1000) != 0xAA || m.Peek64(block+1*arch.MB) != 0xBB {
		t.Error("promotion lost data")
	}
	if m.Peek64(block+0x3000) != 0 {
		t.Error("untouched hole not zero after promotion")
	}
}

func TestPromoteRejectsIneligible(t *testing.T) {
	m, err := New(arch.DefaultSystem(), arch.Page2M, 1)
	if err != nil {
		t.Fatal(err)
	}
	as := m.AddressSpace()
	va := m.MustMalloc(8 * arch.MB) // 2MB-backed: nothing to promote
	if as.CanPromote(va) {
		t.Error("2MB-backed region promotable")
	}
	if err := as.Promote(va); err == nil {
		t.Error("promotion of 2MB-backed region succeeded")
	}
}
