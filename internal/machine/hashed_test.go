package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

func hashedConfig() arch.SystemConfig {
	cfg := arch.DefaultSystem()
	cfg.PageTable = "hashed"
	return cfg
}

func TestHashedMachineConsistencyOracle(t *testing.T) {
	m, err := New(hashedConfig(), arch.Page4K, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	va := m.MustMalloc(32 * arch.MB)
	oracle := map[arch.VAddr]uint64{}
	for i := 0; i < 30_000; i++ {
		a := va + arch.VAddr(rng.Uint64()%(32*arch.MB/8)*8)
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			m.Store64(a, v)
			oracle[a] = v
		} else if got := m.Load64(a); got != oracle[a] {
			t.Fatalf("Load64(%#x) = %#x, want %#x", uint64(a), got, oracle[a])
		}
	}
}

func TestHashedRejectsSuperpagePolicies(t *testing.T) {
	if _, err := New(hashedConfig(), arch.Page2M, 1); err == nil {
		t.Error("hashed machine accepted a 2MB policy")
	}
	if _, err := New(hashedConfig(), arch.Page1G, 1); err == nil {
		t.Error("hashed machine accepted a 1GB policy")
	}
}

func TestHashedConfigValidation(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.PageTable = "cuckoo"
	if _, err := New(cfg, arch.Page4K, 1); err == nil {
		t.Error("unknown page-table organization accepted")
	}
	cfg = hashedConfig()
	cfg.PagingLevels = 5
	if _, err := New(cfg, arch.Page4K, 1); err == nil {
		t.Error("hashed + LA57 accepted")
	}
}

// TestHashedWalksStayShortAtScale is the headline property of the
// alternative structure: at a footprint where radix walks need multiple
// loads, hashed walks still need ~1.
func TestHashedWalksStayShortAtScale(t *testing.T) {
	loadsPerWalk := func(cfg arch.SystemConfig) float64 {
		m, err := New(cfg, arch.Page4K, 7)
		if err != nil {
			t.Fatal(err)
		}
		const bytes = uint64(256 * arch.MB)
		va := m.MustMalloc(bytes)
		for off := uint64(0); off < bytes; off += 4096 {
			m.Poke64(va+arch.VAddr(off), 1)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 250_000; i++ {
			m.Load64(va + arch.VAddr(rng.Uint64()%(bytes/8)*8))
		}
		met := perf.Compute(m.Counters())
		if met.Walks == 0 {
			t.Fatal("no walks")
		}
		return met.Eq1.WalkerLoadsPerWalk
	}
	radixCfg := arch.DefaultSystem()
	radixCfg.PSC = arch.PSCGeometry{} // strip the PSCs: raw radix depth
	radix := loadsPerWalk(radixCfg)
	hashed := loadsPerWalk(hashedConfig())
	if radix < 3.5 {
		t.Fatalf("PSC-less radix walks used %.2f loads; expected ~4", radix)
	}
	if hashed > 1.5 {
		t.Errorf("hashed walks used %.2f loads; expected ~1", hashed)
	}
}

func TestHashedPromotionDisabled(t *testing.T) {
	m, err := New(hashedConfig(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.EnablePromotion(DefaultPromotionConfig())
	va := m.MustMalloc(64 * arch.MB)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300_000; i++ {
		m.Load64(va + arch.VAddr(rng.Uint64()%(64*arch.MB/8)*8))
	}
	if m.Promotions() != 0 {
		t.Errorf("%d promotions on a hashed table", m.Promotions())
	}
}
