package machine_test

import (
	"reflect"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
)

// scatterRun drives a machine through a deterministic scattered access
// pattern wide enough to miss the TLBs and trigger speculation.
func scatterRun(t *testing.T, m *machine.Machine, accesses int) {
	t.Helper()
	va := m.MustMalloc(128 * arch.MB)
	y := uint64(7)
	for i := 0; i < accesses; i++ {
		y ^= y << 13
		y ^= y >> 7
		y ^= y << 17
		m.Load64(va + arch.VAddr(y%(128*arch.MB/8)*8))
		if i%3 == 0 {
			m.Store64(va+arch.VAddr(y%(64*arch.MB/8)*8), y)
		}
		m.Ops(2)
		m.Branch(uint64(i%257), y&1 == 0)
	}
}

func newTestMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSampledRunsDeterministic checks that two identically-seeded runs
// with identical sampling configuration produce identical sample streams
// and timelines, record for record.
func TestSampledRunsDeterministic(t *testing.T) {
	run := func() ([]perf.Sample, []perf.IntervalRow) {
		m := newTestMachine(t)
		s := m.Sampler()
		if err := s.Arm(perf.DTLBLoadWalkDuration, 1024); err != nil {
			t.Fatal(err)
		}
		if err := s.Arm(perf.DTLBStoreWalkDuration, 1024); err != nil {
			t.Fatal(err)
		}
		if _, err := m.StartIntervals(10_000); err != nil {
			t.Fatal(err)
		}
		scatterRun(t, m, 30_000)
		return s.Drain(), m.StopIntervals()
	}
	s1, rows1 := run()
	s2, rows2 := run()
	if len(s1) == 0 {
		t.Fatal("no samples captured")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("sample streams differ: %d vs %d records", len(s1), len(s2))
	}
	if len(rows1) == 0 || !reflect.DeepEqual(rows1, rows2) {
		t.Errorf("timelines differ: %d vs %d rows", len(rows1), len(rows2))
	}
}

// TestSamplingDoesNotPerturbCounters is the golden zero-change check:
// a run with sampling and interval streaming armed must retire the exact
// same counter values as the same run with observability off.
func TestSamplingDoesNotPerturbCounters(t *testing.T) {
	run := func(observe bool) perf.Counters {
		m := newTestMachine(t)
		if observe {
			s := m.Sampler()
			if err := s.Arm(perf.DTLBLoadWalkDuration, 512); err != nil {
				t.Fatal(err)
			}
			if err := s.Arm(perf.AllLoads, 97); err != nil {
				t.Fatal(err)
			}
			if _, err := m.StartIntervals(5_000); err != nil {
				t.Fatal(err)
			}
		}
		scatterRun(t, m, 20_000)
		if observe {
			m.StopIntervals()
		}
		return m.Counters()
	}
	plain := run(false)
	observed := run(true)
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observability changed counters:\nplain:\n%s\nobserved:\n%s",
			plain.FormatNonZero(), observed.FormatNonZero())
	}
}

// TestSampleRingOverflow arms an undersized ring and checks overflow is
// counted, not silent.
func TestSampleRingOverflow(t *testing.T) {
	m := newTestMachine(t)
	s := perf.NewSampler(8)
	if err := s.Arm(perf.DTLBLoadMissWalk, 1); err != nil {
		t.Fatal(err)
	}
	m.AttachSampler(s)
	scatterRun(t, m, 20_000)
	if s.Len() != 8 {
		t.Errorf("ring holds %d, want 8", s.Len())
	}
	if s.Dropped() == 0 {
		t.Error("overflow not counted")
	}
	if s.Captured() != 8 {
		t.Errorf("captured %d, want 8", s.Captured())
	}
	report := perf.NewReport(s.Drain(), s.Dropped(), s.DroppedWeight(), 4)
	if report.Dropped != s.Dropped() {
		t.Error("report does not carry the drop count")
	}
}

// TestIntervalTimelineCoversRun checks the streamed rows tile the run:
// contiguous instruction windows whose deltas sum to the whole-run delta.
func TestIntervalTimelineCoversRun(t *testing.T) {
	m := newTestMachine(t)
	start := m.Counters()
	if _, err := m.StartIntervals(7_500); err != nil {
		t.Fatal(err)
	}
	scatterRun(t, m, 15_000)
	rows := m.StopIntervals()
	total := perf.Delta(start, m.Counters())
	if len(rows) < 2 {
		t.Fatalf("only %d rows", len(rows))
	}
	var sum perf.Counters
	prevEnd := rows[0].InstStart
	for _, row := range rows {
		if row.InstStart != prevEnd {
			t.Errorf("row %d starts at %d, previous ended at %d", row.Index, row.InstStart, prevEnd)
		}
		if row.Delta.Get(perf.InstRetired) != row.InstEnd-row.InstStart {
			t.Errorf("row %d inst delta %d != window width %d",
				row.Index, row.Delta.Get(perf.InstRetired), row.InstEnd-row.InstStart)
		}
		prevEnd = row.InstEnd
		for _, e := range perf.Events() {
			sum.Add(e, row.Delta.Get(e))
		}
	}
	if !reflect.DeepEqual(sum, total) {
		t.Errorf("row deltas do not sum to the run delta:\nsum:\n%s\ntotal:\n%s",
			sum.FormatNonZero(), total.FormatNonZero())
	}
}

// TestSamplerHotBlockAttribution hammers one 2 MB block (interleaved
// with a scattered stream that keeps evicting its translations) and
// checks walk-cycle attribution converges on it — the sampling-subsystem
// version of the signal that steers hugepage promotion.
func TestSamplerHotBlockAttribution(t *testing.T) {
	m := newTestMachine(t)
	va := m.MustMalloc(256 * arch.MB)
	hot := arch.VAddr(arch.AlignUp(uint64(va), arch.Page2M.Bytes()))
	s := m.Sampler()
	if err := s.Arm(perf.DTLBLoadWalkDuration, 256); err != nil {
		t.Fatal(err)
	}
	y := uint64(3)
	for i := 0; i < 60_000; i++ {
		y ^= y << 13
		y ^= y >> 7
		y ^= y << 17
		m.Load64(va + arch.VAddr(y%(256*arch.MB/8)*8))
		m.Load64(hot + arch.VAddr(y%(arch.Page2M.Bytes()/8)*8))
	}
	samples := s.Drain()
	blocks := perf.HotBlocks(samples, 21, 1)
	if len(blocks) != 1 || blocks[0] != uint64(hot) {
		t.Errorf("hottest 2MB block %#x, want %#x", blocks, uint64(hot))
	}
	report := perf.NewReport(samples, s.Dropped(), s.DroppedWeight(), 5)
	if len(report.HotPages) == 0 {
		t.Fatal("no hot pages")
	}
	top := report.HotPages[0].Page
	if top < uint64(hot) || top >= uint64(hot)+arch.Page2M.Bytes() {
		t.Errorf("hottest page %#x outside the hot block [%#x,+2MB)", top, uint64(hot))
	}
}
