package machine

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
)

func newM(t *testing.T, policy arch.PageSize) *Machine {
	t.Helper()
	m, err := New(arch.DefaultSystem(), policy, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.DRAMLatency = 0
	if _, err := New(cfg, arch.Page4K, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := newM(t, arch.Page4K)
	va := m.MustMalloc(64 * arch.KB)
	m.Store64(va+8, 0xfeedface)
	if got := m.Load64(va + 8); got != 0xfeedface {
		t.Errorf("Load64 = %#x", got)
	}
	if got := m.Load64(va + 16); got != 0 {
		t.Errorf("untouched word = %#x, want 0", got)
	}
}

// TestMemoryConsistencyOracle drives random loads/stores through the whole
// translation stack and checks the data against a Go map, for every page
// size policy. This is the end-to-end correctness property of the
// simulator: translation must never scramble or alias data.
func TestMemoryConsistencyOracle(t *testing.T) {
	for _, policy := range []arch.PageSize{arch.Page4K, arch.Page2M, arch.Page1G} {
		t.Run(policy.String(), func(t *testing.T) {
			m := newM(t, policy)
			rng := rand.New(rand.NewSource(int64(policy) + 5))
			// Several allocations of varying sizes.
			var bases []arch.VAddr
			var sizes []uint64
			for _, n := range []uint64{4 * arch.KB, 300, 2 * arch.MB, 10 * arch.MB} {
				bases = append(bases, m.MustMalloc(n))
				sizes = append(sizes, n)
			}
			oracle := map[arch.VAddr]uint64{}
			for i := 0; i < 20000; i++ {
				r := rng.Intn(len(bases))
				off := rng.Uint64() % (sizes[r] / 8) * 8
				va := bases[r] + arch.VAddr(off)
				if rng.Intn(2) == 0 {
					v := rng.Uint64()
					m.Store64(va, v)
					oracle[va] = v
				} else {
					want := oracle[va]
					if got := m.Load64(va); got != want {
						t.Fatalf("policy %v: Load64(%#x) = %#x, want %#x",
							policy, uint64(va), got, want)
					}
				}
			}
		})
	}
}

func TestDataIdenticalAcrossPolicies(t *testing.T) {
	// The same program must compute the same data under any page size —
	// only the timing changes.
	sum := func(policy arch.PageSize) uint64 {
		m := newM(t, policy)
		va := m.MustMalloc(arch.MB)
		for i := uint64(0); i < arch.MB/8; i++ {
			m.Store64(va+arch.VAddr(i*8), i*i)
		}
		var s uint64
		for i := uint64(0); i < arch.MB/8; i++ {
			s += m.Load64(va + arch.VAddr(i*8))
		}
		return s
	}
	s4, s2, s1 := sum(arch.Page4K), sum(arch.Page2M), sum(arch.Page1G)
	if s4 != s2 || s2 != s1 {
		t.Errorf("sums differ: %d %d %d", s4, s2, s1)
	}
}

func TestFootprintIndependentOfPolicy(t *testing.T) {
	var fp [3]uint64
	for _, policy := range []arch.PageSize{arch.Page4K, arch.Page2M, arch.Page1G} {
		m := newM(t, policy)
		m.MustMalloc(3 * arch.MB)
		m.MustMalloc(100)
		fp[policy] = m.Footprint()
	}
	if fp[0] != fp[1] || fp[1] != fp[2] {
		t.Errorf("footprints differ across policies: %v", fp)
	}
}

func TestPageTableBytesSmallerWithSuperpages(t *testing.T) {
	touch := func(policy arch.PageSize) uint64 {
		m := newM(t, policy)
		va := m.MustMalloc(64 * arch.MB)
		for off := uint64(0); off < 64*arch.MB; off += 4096 {
			m.Store64(va+arch.VAddr(off), 1)
		}
		return m.PageTableBytes()
	}
	if t4, t2 := touch(arch.Page4K), touch(arch.Page2M); t2 >= t4 {
		t.Errorf("2MB page tables (%d) not smaller than 4KB (%d)", t2, t4)
	}
}

func TestCyclesAdvance(t *testing.T) {
	m := newM(t, arch.Page4K)
	va := m.MustMalloc(arch.MB)
	for i := 0; i < 1000; i++ {
		m.Load64(va + arch.VAddr(i*8))
	}
	c := m.Counters()
	if c.Get(perf.Cycles) == 0 || c.Get(perf.InstRetired) != 1000 {
		t.Errorf("cycles=%d inst=%d", c.Get(perf.Cycles), c.Get(perf.InstRetired))
	}
	cpi := float64(c.Get(perf.Cycles)) / float64(c.Get(perf.InstRetired))
	if cpi < 0.3 || cpi > 30 {
		t.Errorf("implausible CPI %.2f", cpi)
	}
}

func TestMappedBytesTracksTouch(t *testing.T) {
	m := newM(t, arch.Page4K)
	va := m.MustMalloc(arch.MB)
	if m.MappedBytes() != 0 {
		t.Fatal("pages mapped before touch")
	}
	m.Load64(va)
	if m.MappedBytes() != 4096 {
		t.Errorf("mapped = %d after one touch", m.MappedBytes())
	}
}
