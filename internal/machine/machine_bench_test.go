package machine

import (
	"testing"

	"atscale/internal/arch"
)

func benchMachine(b *testing.B, policy arch.PageSize, bytes uint64) (*Machine, arch.VAddr) {
	b.Helper()
	m, err := New(arch.DefaultSystem(), policy, 1)
	if err != nil {
		b.Fatal(err)
	}
	va := m.MustMalloc(bytes)
	// Pre-fault so the measured loop is steady state.
	for off := uint64(0); off < bytes; off += 4096 {
		m.Poke64(va+arch.VAddr(off), off)
	}
	return m, va
}

// BenchmarkLoadSequential is the simulator's per-access cost with a
// TLB/cache-friendly stream.
func BenchmarkLoadSequential(b *testing.B) {
	m, va := benchMachine(b, arch.Page4K, 4*arch.MB)
	words := uint64(4 * arch.MB / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load64(va + arch.VAddr(uint64(i)%words*8))
	}
}

// BenchmarkLoadRandom4K is the worst case: every access TLB-misses and
// walks.
func BenchmarkLoadRandom4K(b *testing.B) {
	m, va := benchMachine(b, arch.Page4K, 256*arch.MB)
	words := uint64(256 * arch.MB / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load64(va + arch.VAddr(uint64(i)*0x9E3779B97F4A7C15%words&^7*8))
	}
}

// BenchmarkLoadRandom2M is the same pattern under superpages.
func BenchmarkLoadRandom2M(b *testing.B) {
	m, va := benchMachine(b, arch.Page2M, 256*arch.MB)
	words := uint64(256 * arch.MB / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load64(va + arch.VAddr(uint64(i)*0x9E3779B97F4A7C15%words&^7*8))
	}
}

// BenchmarkPoke is the untimed setup path.
func BenchmarkPoke(b *testing.B) {
	m, va := benchMachine(b, arch.Page4K, 4*arch.MB)
	words := uint64(4 * arch.MB / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Poke64(va+arch.VAddr(uint64(i)%words*8), uint64(i))
	}
}
