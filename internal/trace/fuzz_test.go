package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and must terminate with a clean EOF or an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid small trace and some mutations.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Malloc(0x10000, 4096)
	w.Prefault(0x10000)
	w.Load(0x10008)
	w.Store(0x10010)
	w.Ops(3)
	w.Branch(0x400, true)
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("att1"))
	f.Add([]byte("att1\xff\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
		}
	})
}
