// Package trace records and replays workload event streams. A trace
// captures everything a workload asked of the machine — allocations,
// setup-phase prefaults, loads, stores, instruction batches, branches —
// so a recorded run can be replayed bit-identically on a fresh machine
// (or a differently configured one: a what-if TLB study over a production
// trace, the proxy-workload use case of the paper's §II-B).
//
// The format is a byte stream: a 4-byte magic, then one event per record:
// a kind byte followed by uvarint operands.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"atscale/internal/arch"
	"atscale/internal/machine"
)

// magic identifies trace files (and their format version).
var magic = [4]byte{'a', 't', 't', '1'}

// Kind identifies one event record.
type Kind uint8

// Event kinds.
const (
	// KLoad is a retired load; operand: va.
	KLoad Kind = iota + 1
	// KStore is a retired store; operand: va.
	KStore
	// KOps is a non-memory instruction batch; operand: n.
	KOps
	// KBranchTaken is a taken branch; operand: pc.
	KBranchTaken
	// KBranchNotTaken is a not-taken branch; operand: pc.
	KBranchNotTaken
	// KMalloc is an allocation; operands: returned va, size.
	KMalloc
	// KPrefault is a setup-phase page materialization; operand: page va.
	KPrefault
)

// Event is one decoded trace record.
type Event struct {
	Kind Kind
	// A is the first operand (va, pc, or n by Kind).
	A uint64
	// B is the second operand (KMalloc's size).
	B uint64
}

// Writer encodes events to a stream. It implements machine.Tracer, so
// recording is:
//
//	w := trace.NewWriter(f)
//	m.SetTracer(w)
//	... run the workload ...
//	m.SetTracer(nil)
//	w.Flush()
type Writer struct {
	w *bufio.Writer
	//atlint:noreset sticky first-error contract: Flush and Err report it; clearing it would hide a failed trace
	err error
	//atlint:noreset lifetime event count behind Events; Flush drains buffers, it does not end the trace
	n uint64
}

// NewWriter starts a trace on out.
func NewWriter(out io.Writer) *Writer {
	w := &Writer{w: bufio.NewWriterSize(out, 1<<20)}
	_, w.err = w.w.Write(magic[:])
	return w
}

// Events returns how many events have been written.
func (w *Writer) Events() uint64 { return w.n }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) emit(k Kind, operands ...uint64) {
	if w.err != nil {
		return
	}
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = byte(k)
	n := 1
	for _, op := range operands {
		n += binary.PutUvarint(buf[n:], op)
	}
	_, w.err = w.w.Write(buf[:n])
	w.n++
}

// Load implements machine.Tracer.
func (w *Writer) Load(va arch.VAddr) { w.emit(KLoad, uint64(va)) }

// Store implements machine.Tracer.
func (w *Writer) Store(va arch.VAddr) { w.emit(KStore, uint64(va)) }

// Ops implements machine.Tracer.
func (w *Writer) Ops(n uint64) { w.emit(KOps, n) }

// Branch implements machine.Tracer.
func (w *Writer) Branch(pc uint64, taken bool) {
	if taken {
		w.emit(KBranchTaken, pc)
	} else {
		w.emit(KBranchNotTaken, pc)
	}
}

// Malloc implements machine.Tracer.
func (w *Writer) Malloc(va arch.VAddr, n uint64) { w.emit(KMalloc, uint64(va), n) }

// Prefault implements machine.Tracer.
func (w *Writer) Prefault(page arch.VAddr) { w.emit(KPrefault, uint64(page)) }

// Reader decodes events from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader opens a trace, validating the magic.
func NewReader(in io.Reader) (*Reader, error) {
	r := &Reader{r: bufio.NewReaderSize(in, 1<<20)}
	var got [4]byte
	if _, err := io.ReadFull(r.r, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got[:])
	}
	return r, nil
}

// Next decodes one event; it returns io.EOF at a clean end of trace.
func (r *Reader) Next() (Event, error) {
	kb, err := r.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF passes through
	}
	e := Event{Kind: Kind(kb)}
	switch e.Kind {
	case KLoad, KStore, KOps, KBranchTaken, KBranchNotTaken, KPrefault:
		if e.A, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, truncated(err)
		}
	case KMalloc:
		if e.A, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, truncated(err)
		}
		if e.B, err = binary.ReadUvarint(r.r); err != nil {
			return Event{}, truncated(err)
		}
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind %d", kb)
	}
	return e, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Replay feeds a recorded trace to a machine. Allocations are re-executed
// and verified to land at their recorded addresses (the machine's virtual
// allocator is deterministic); prefaults re-materialize setup-phase pages
// quietly; everything else retires as it did when recorded. maxEvents
// bounds the replay (0 = entire trace). It returns the number of events
// replayed.
func Replay(m *machine.Machine, in io.Reader, maxEvents uint64) (uint64, error) {
	r, err := NewReader(in)
	if err != nil {
		return 0, err
	}
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		switch e.Kind {
		case KLoad:
			m.Load64(arch.VAddr(e.A))
		case KStore:
			m.Store64(arch.VAddr(e.A), 0)
		case KOps:
			m.Ops(e.A)
		case KBranchTaken:
			m.Branch(e.A, true)
		case KBranchNotTaken:
			m.Branch(e.A, false)
		case KMalloc:
			va, err := m.Malloc(e.B)
			if err != nil {
				return n, fmt.Errorf("trace: replaying malloc(%d): %w", e.B, err)
			}
			if va != arch.VAddr(e.A) {
				return n, fmt.Errorf("trace: malloc replayed at %#x, recorded %#x (allocator drift)",
					uint64(va), e.A)
			}
		case KPrefault:
			m.Prefault(arch.VAddr(e.A))
		}
		n++
	}
	return n, nil
}
