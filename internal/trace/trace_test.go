package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func TestRoundTripEncoding(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rng := rand.New(rand.NewSource(8))
	var want []Event
	for i := 0; i < 5000; i++ {
		switch rng.Intn(6) {
		case 0:
			va := arch.VAddr(rng.Uint64() >> 16)
			w.Load(va)
			want = append(want, Event{KLoad, uint64(va), 0})
		case 1:
			va := arch.VAddr(rng.Uint64() >> 16)
			w.Store(va)
			want = append(want, Event{KStore, uint64(va), 0})
		case 2:
			n := uint64(rng.Intn(100))
			w.Ops(n)
			want = append(want, Event{KOps, n, 0})
		case 3:
			pc := rng.Uint64() >> 40
			taken := rng.Intn(2) == 0
			w.Branch(pc, taken)
			k := KBranchTaken
			if !taken {
				k = KBranchNotTaken
			}
			want = append(want, Event{k, pc, 0})
		case 4:
			va, n := arch.VAddr(rng.Uint64()>>20), uint64(rng.Intn(1<<20))
			w.Malloc(va, n)
			want = append(want, Event{KMalloc, uint64(va), n})
		default:
			va := arch.VAddr(rng.Uint64() >> 16 &^ 0xFFF)
			w.Prefault(va)
			want = append(want, Event{KPrefault, uint64(va), 0})
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != uint64(len(want)) {
		t.Fatalf("writer counted %d events, want %d", w.Events(), len(want))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantE := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != wantE {
			t.Fatalf("event %d = %+v, want %+v", i, got, wantE)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected clean EOF, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("nope")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Malloc(0x1000, 1<<30)
	w.Flush()
	short := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated record gave %v, want unexpected EOF", err)
	}
}

// TestRecordReplayCounterIdentity is the headline property: replaying a
// recorded run on an identically configured fresh machine reproduces the
// recorded machine's counters exactly.
func TestRecordReplayCounterIdentity(t *testing.T) {
	spec, err := workloads.ByName("bfs-urand")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := machine.New(arch.DefaultSystem(), arch.Page4K, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec.SetTracer(w)
	inst, err := spec.Build(rec, 12)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(80_000)
	rec.SetTracer(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rep, err := machine.New(arch.DefaultSystem(), arch.Page4K, 9)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Replay(rep, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != w.Events() {
		t.Fatalf("replayed %d of %d events", n, w.Events())
	}
	if rec.Counters() != rep.Counters() {
		t.Error("replay counters differ from recording")
	}
	if rec.Footprint() != rep.Footprint() {
		t.Errorf("footprints differ: %d vs %d", rec.Footprint(), rep.Footprint())
	}
}

// TestReplayOnDifferentMachine replays a trace on a modified machine —
// the what-if use case — and sees the expected directional change.
func TestReplayOnDifferentMachine(t *testing.T) {
	spec, err := workloads.ByName("gups-rand")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := machine.New(arch.DefaultSystem(), arch.Page4K, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec.SetTracer(w)
	inst, err := spec.Build(rec, 25) // 32MB table
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(60_000)
	rec.SetTracer(nil)
	w.Flush()
	raw := buf.Bytes()

	small := arch.DefaultSystem()
	big := arch.DefaultSystem()
	big.STLB.Entries = 8192
	run := func(cfg arch.SystemConfig) uint64 {
		m, err := machine.New(cfg, arch.Page4K, 9)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(m, bytes.NewReader(raw), 0); err != nil {
			t.Fatal(err)
		}
		c := m.Counters()
		return c.Get(perf.STLBMissLoads)
	}
	if s, b := run(small), run(big); b >= s {
		t.Errorf("8x STLB did not reduce retired walk loads on replay: %d vs %d", b, s)
	}
}
