package refute

import (
	"encoding/binary"
	"math"
	"testing"

	"atscale/internal/perf"
)

// FuzzIdentityEval throws arbitrary counter vectors and ring accounting
// at the full identity registry. Whatever the counters say — including
// states no correct simulator can produce — evaluation must not panic,
// every residual must be finite and non-negative, and re-evaluating the
// same unit must be bit-identical (the determinism the report's
// byte-identical contract rests on).
func FuzzIdentityEval(f *testing.F) {
	f.Add([]byte{}, false, false)
	f.Add(bytes64(1, 2, 3, 4, 5, 6, 7, 8), true, false)
	f.Add(bytes64(math.MaxUint64, 0, math.MaxUint64, 1), false, true)
	f.Add(bytes64(1_000_000, 2_000_000, 400_000, 8_500, 7_700, 105_000), true, true)

	ids := Identities()
	f.Fuzz(func(t *testing.T, data []byte, virt, sampling bool) {
		u := Unit{Name: "fuzz", Virt: virt, Sampling: sampling, EndCycle: 1}
		// The first 8 words (when present) drive the ring accounting,
		// the rest scatter over the counter vector.
		fields := []*uint64{
			&u.SamplesDrained, &u.SamplesCaptured, &u.SamplesDropped,
			&u.SampleCapacity, &u.SampleWeight, &u.SampleDroppedWeight,
			&u.SampleEventsTotal, &u.SampleSlack,
		}
		for i := 0; i+8 <= len(data); i += 8 {
			v := binary.LittleEndian.Uint64(data[i : i+8])
			if w := i / 8; w < len(fields) {
				*fields[w] = v
			} else {
				// Cap counter magnitudes so derived-metric arithmetic stays
				// finite; the simulator's counters are bounded by cycle
				// counts anyway.
				u.Counters.Add(perf.Event(w)%perf.NumEvents, v%(1<<52))
			}
		}
		u.Metrics = perf.Compute(u.Counters)

		for i := range ids {
			id := &ids[i]
			if !id.inScope(&u) || !id.guarded(&u) {
				continue
			}
			l1, r1, res1 := id.residual(&u)
			l2, r2, res2 := id.residual(&u)
			if res1 < 0 || math.IsNaN(res1) || math.IsInf(res1, 0) {
				t.Fatalf("%s: residual %g not a finite non-negative number (l=%g r=%g)",
					id.Name, res1, l1, r1)
			}
			if l1 != l2 || r1 != r2 || res1 != res2 {
				t.Fatalf("%s: evaluation not deterministic: (%g,%g,%g) vs (%g,%g,%g)",
					id.Name, l1, r1, res1, l2, r2, res2)
			}
		}

		// The checker layer must digest the same unit without panicking,
		// whatever mix of holds and violations it sees.
		c := NewChecker()
		out := c.CheckUnit(u, nil)
		if out.Checked+out.Skipped != len(ids) {
			t.Fatalf("checked %d + skipped %d != %d identities",
				out.Checked, out.Skipped, len(ids))
		}
	})
}

// bytes64 packs words little-endian for fuzz seeds.
func bytes64(ws ...uint64) []byte {
	b := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return b
}
