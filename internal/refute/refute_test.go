package refute

import (
	"bytes"
	"strings"
	"testing"

	"atscale/internal/perf"
	"atscale/internal/telemetry"
)

// addByName is the test fixture's counter builder: fabricated units
// reference events by their perf-tool spelling, like identities do.
func addByName(cs *perf.Counters, name string, n uint64) {
	e, err := perf.ByName(name)
	if err != nil {
		panic(err)
	}
	cs.Add(e, n)
}

// goodNativeCounters fabricates a counter delta satisfying every
// native-scope identity: the Table VI orderings, the walk_duration
// guest/EPT split (all guest natively), and non-zero Eq. 1 guards.
func goodNativeCounters() perf.Counters {
	var cs perf.Counters
	addByName(&cs, "inst_retired.any", 1_000_000)
	addByName(&cs, "cpu_clk_unhalted.thread", 2_000_000)
	addByName(&cs, "mem_uops_retired.all_loads", 300_000)
	addByName(&cs, "mem_uops_retired.all_stores", 100_000)
	addByName(&cs, "mem_uops_retired.stlb_miss_loads", 5_000)
	addByName(&cs, "mem_uops_retired.stlb_miss_stores", 1_000)
	addByName(&cs, "dtlb_load_misses.miss_causes_a_walk", 7_000)
	addByName(&cs, "dtlb_store_misses.miss_causes_a_walk", 1_500)
	addByName(&cs, "dtlb_load_misses.walk_completed", 6_500)
	addByName(&cs, "dtlb_store_misses.walk_completed", 1_200)
	addByName(&cs, "dtlb_load_misses.stlb_hit", 20_000)
	addByName(&cs, "dtlb_store_misses.stlb_hit", 4_000)
	addByName(&cs, "dtlb_load_misses.walk_duration", 90_000)
	addByName(&cs, "dtlb_store_misses.walk_duration", 15_000)
	addByName(&cs, "dtlb_load_misses.walk_duration_guest", 90_000)
	addByName(&cs, "dtlb_store_misses.walk_duration_guest", 15_000)
	addByName(&cs, "page_walker_loads.dtlb_l1", 10_000)
	addByName(&cs, "page_walker_loads.dtlb_l2", 8_000)
	addByName(&cs, "page_walker_loads.dtlb_l3", 5_000)
	addByName(&cs, "page_walker_loads.dtlb_memory", 2_000)
	return cs
}

// goodVirtCounters extends the native fixture with a consistent EPT
// dimension: EPT walk cycles carve a share out of walk_duration, so the
// guest-dimension counts shrink by the same amount.
func goodVirtCounters() perf.Counters {
	var d perf.Counters
	for e := perf.Event(0); e < perf.NumEvents; e++ {
		// The guest-duration events shrink by the 30k cycles the EPT
		// dimension takes over; everything else matches the native fixture.
		n := goodNativeCounters().Get(e)
		switch e.String() {
		case "dtlb_load_misses.walk_duration_guest":
			n = 65_000
		case "dtlb_store_misses.walk_duration_guest":
			n = 10_000
		}
		d.Add(e, n)
	}
	addByName(&d, "ept_misses.walk_duration", 30_000)
	addByName(&d, "ept_misses.miss_causes_a_walk", 3_000)
	addByName(&d, "ept_misses.walk_completed", 2_800)
	addByName(&d, "page_walker_loads.ept_dtlb_l1", 6_000)
	addByName(&d, "page_walker_loads.ept_dtlb_memory", 1_000)
	return d
}

func nativeUnit(name string) Unit {
	cs := goodNativeCounters()
	return Unit{
		Name: name, StartCycle: 1_000, EndCycle: 2_001_000,
		Counters: cs, Metrics: perf.Compute(cs),
	}
}

func virtUnit(name string) Unit {
	cs := goodVirtCounters()
	return Unit{
		Name: name, StartCycle: 500, EndCycle: 2_000_500, Virt: true,
		Counters: cs, Metrics: perf.Compute(cs),
	}
}

// samplingUnit fabricates ring accounting for a full ring with drops:
// 64 records drained from a 64-slot ring, 10 dropped, weights
// reconstructing the armed events' mass to within one period.
func samplingUnit(name string) Unit {
	u := nativeUnit(name)
	u.Sampling = true
	u.SamplesDrained = 64
	u.SamplesCaptured = 64
	u.SamplesDropped = 10
	u.SampleCapacity = 64
	u.SampleWeight = 64 * 257
	u.SampleDroppedWeight = 10 * 257
	u.SampleEventsTotal = 74*257 + 100
	u.SampleSlack = 257
	return u
}

// TestIdentitiesHoldOnConsistentUnits is the golden path: three
// fabricated units (native, virt, sampling) between them bring every
// registry identity into scope, and none violates.
func TestIdentitiesHoldOnConsistentUnits(t *testing.T) {
	c := NewChecker()
	for _, u := range []Unit{nativeUnit("native"), virtUnit("virt"), samplingUnit("sampling")} {
		out := c.CheckUnit(u, nil)
		if len(out.Violations) != 0 {
			t.Errorf("unit %s: unexpected violations %+v", u.Name, out.Violations)
		}
		if out.Checked == 0 {
			t.Errorf("unit %s: nothing checked", u.Name)
		}
	}
	rep := c.Report()
	if rep.TotalViolations != 0 {
		t.Fatalf("violations on consistent units:\n%s", rep.Render())
	}
	for _, ir := range rep.Identities {
		if ir.Checked == 0 {
			t.Errorf("identity %s never checked across the fixture set", ir.Name)
		}
	}
	if rep.Units != 3 {
		t.Errorf("Units = %d, want 3", rep.Units)
	}
}

// TestBrokenCounterCaught seeds a fault — guest walk cycles exceeding
// the total walk_duration, as a miswired counter would produce — and
// proves the checker catches it, attributes it to the right identities,
// and pins it to the unit's cycle range on an exported, validating
// timeline.
func TestBrokenCounterCaught(t *testing.T) {
	u := nativeUnit("broken p=1 4KB seed=7")
	addByName(&u.Counters, "dtlb_load_misses.walk_duration_guest", 500)
	u.Metrics = perf.Compute(u.Counters)

	tr := telemetry.New()
	proc := tr.Process(u.Name)
	c := NewChecker()
	out := c.CheckUnit(u, proc)

	want := map[string]bool{"walk_duration_split": true, "guest_duration_le_total": true}
	got := map[string]bool{}
	for _, v := range out.Violations {
		got[v.Identity] = true
		if v.StartCycle != u.StartCycle || v.EndCycle != u.EndCycle {
			t.Errorf("violation %s pinned to [%d,%d], want [%d,%d]",
				v.Identity, v.StartCycle, v.EndCycle, u.StartCycle, u.EndCycle)
		}
		if v.Residual <= 0 {
			t.Errorf("violation %s has non-positive residual %g", v.Identity, v.Residual)
		}
	}
	for id := range want {
		if !got[id] {
			t.Errorf("seeded fault not caught by %s (got %v)", id, out.Violations)
		}
	}

	tr.FinishUnit(telemetry.Unit{Name: u.Name, Cycles: u.EndCycle})
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.Validate(buf.Bytes()); err != nil {
		t.Fatalf("timeline with pinned violations fails validation: %v", err)
	}
	for id := range want {
		if !bytes.Contains(buf.Bytes(), []byte("violated: "+id)) {
			t.Errorf("exported timeline lacks the pinned %s violation", id)
		}
	}
}

// TestGuardSkipsNotVacuousHold: an all-zero unit trips every Eq. 1
// guard, so eq1_product must be skipped — not counted as holding on
// garbage.
func TestGuardSkipsNotVacuousHold(t *testing.T) {
	c := NewChecker()
	c.CheckUnit(Unit{Name: "empty"}, nil)
	rep := c.Report()
	for _, ir := range rep.Identities {
		if ir.Name == "eq1_product" {
			if ir.Checked != 0 || ir.Skipped != 1 {
				t.Errorf("eq1_product on empty unit: checked=%d skipped=%d, want 0/1",
					ir.Checked, ir.Skipped)
			}
		}
	}
}

// TestScopeFiltering: virt-only identities skip native units and vice
// versa; sampling identities skip unsampled units.
func TestScopeFiltering(t *testing.T) {
	c := NewChecker()
	c.CheckUnit(nativeUnit("native"), nil)
	rep := c.Report()
	for _, ir := range rep.Identities {
		switch ir.Scope {
		case "virt", "sampling":
			if ir.Checked != 0 {
				t.Errorf("%s (scope %s) checked on a native unsampled unit", ir.Name, ir.Scope)
			}
		case "native", "always":
			if ir.Checked != 1 {
				t.Errorf("%s (scope %s) not checked on a native unit", ir.Name, ir.Scope)
			}
		}
	}
}

// TestReportOrderIndependence: feeding the same units in opposite
// orders yields byte-identical JSON — the serial/parallel determinism
// contract at the package level.
func TestReportOrderIndependence(t *testing.T) {
	units := []Unit{nativeUnit("a"), virtUnit("b"), samplingUnit("c")}
	fwd, rev := NewChecker(), NewChecker()
	for i := range units {
		fwd.CheckUnit(units[i], nil)
		rev.CheckUnit(units[len(units)-1-i], nil)
	}
	a, b := fwd.Report().JSON(), rev.Report().JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("report depends on unit arrival order:\n%s\nvs\n%s", a, b)
	}
}

// TestAbsorbMatchesDirect: absorbing per-variant checkers reports the
// same as checking everything on one checker.
func TestAbsorbMatchesDirect(t *testing.T) {
	direct := NewChecker()
	direct.CheckUnit(nativeUnit("a"), nil)
	direct.CheckUnit(virtUnit("b"), nil)

	total := NewChecker()
	part1, part2 := NewChecker(), NewChecker()
	part1.CheckUnit(nativeUnit("a"), nil)
	part2.CheckUnit(virtUnit("b"), nil)
	total.Absorb(part1)
	total.Absorb(part2)

	if !bytes.Equal(direct.Report().JSON(), total.Report().JSON()) {
		t.Fatal("absorbed report differs from direct report")
	}
}

// TestMergeReports: counts add, max residual and worst unit survive.
func TestMergeReports(t *testing.T) {
	c1, c2 := NewChecker(), NewChecker()
	c1.CheckUnit(nativeUnit("a"), nil)
	u := nativeUnit("z")
	addByName(&u.Counters, "dtlb_load_misses.walk_duration_guest", 500)
	u.Metrics = perf.Compute(u.Counters)
	c2.CheckUnit(u, nil)

	m := MergeReports(c1.Report(), c2.Report())
	if m.Units != 2 {
		t.Errorf("merged Units = %d, want 2", m.Units)
	}
	if m.TotalViolations == 0 {
		t.Error("merged report lost the violation")
	}
	for _, ir := range m.Identities {
		if ir.Name == "walk_duration_split" {
			if ir.Checked != 2 || ir.Violations != 1 || ir.WorstUnit != "z" {
				t.Errorf("merged walk_duration_split: %+v", ir)
			}
		}
	}
}

// TestStatements: every identity renders a readable statement and a
// non-empty doc; rendering is stable across calls.
func TestStatements(t *testing.T) {
	ids := Identities()
	for i := range ids {
		id := &ids[i]
		s := id.Statement()
		if s == "" || id.Doc == "" || id.Name == "" {
			t.Errorf("identity %d underdocumented: name=%q doc=%q stmt=%q", i, id.Name, id.Doc, s)
		}
		if !strings.Contains(s, string(id.Rel)) {
			t.Errorf("statement %q lacks relation %q", s, id.Rel)
		}
		if s != id.Statement() {
			t.Errorf("statement unstable for %s", id.Name)
		}
	}
}
