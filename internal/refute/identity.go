package refute

import (
	"math"

	"atscale/internal/perf"
)

// Unit is one campaign unit's worth of evidence: the measured region's
// counter delta and derived metrics, the unit's cycle extent for
// violation pinning, and the sampler's ring accounting when sampling
// was armed. core.Run builds one per run unit; tests fabricate them.
type Unit struct {
	// Name is the campaign-unique unit name (core's unitName plus any
	// variant tag). The report and the timeline pin are keyed on it.
	Name string
	// StartCycle / EndCycle bound the measured region on the unit's
	// simulated clock — the cycle range a violation is pinned to.
	StartCycle, EndCycle uint64
	// Virt marks nested-paging units (scopes the ept_* identities).
	Virt bool
	// Sampling marks units that ran with the PEBS-style sampler armed
	// (scopes the ring-accounting identities).
	Sampling bool
	// Counters is the measured region's counter delta.
	Counters perf.Counters
	// Metrics is the derived-metric view of Counters.
	Metrics perf.Metrics

	// The sampler's ring accounting (Sampling units only).
	//
	// SamplesDrained is the record count drained after the region;
	// SamplesCaptured is the sampler's lifetime capture count;
	// SamplesDropped / SampleDroppedWeight count ring-overflow losses;
	// SampleCapacity is the ring size; SampleWeight is the sum of the
	// drained records' weights; SampleEventsTotal is the armed events'
	// aggregate delta; SampleSlack is period x armed-event-count — the
	// reconstruction error bound the sampler's weight contract allows.
	SamplesDrained      uint64
	SamplesCaptured     uint64
	SamplesDropped      uint64
	SampleCapacity      uint64
	SampleWeight        uint64
	SampleDroppedWeight uint64
	SampleEventsTotal   uint64
	SampleSlack         uint64
}

// Relation is the asserted ordering between an identity's two sides.
type Relation string

const (
	// EQ asserts L == R within tolerance.
	EQ Relation = "=="
	// GE asserts L >= R (tolerance gives slack below R).
	GE Relation = ">="
	// LE asserts L <= R (tolerance gives slack above R).
	LE Relation = "<="
)

// Scope restricts an identity to the units it is defined over.
type Scope uint8

const (
	// Always checks the identity on every unit.
	Always Scope = iota
	// VirtOnly checks only nested-paging units.
	VirtOnly
	// NativeOnly checks only non-virtualized units.
	NativeOnly
	// SamplingOnly checks only units that ran with the sampler armed.
	SamplingOnly
)

// String returns the scope's report spelling.
func (s Scope) String() string {
	switch s {
	case VirtOnly:
		return "virt"
	case NativeOnly:
		return "native"
	case SamplingOnly:
		return "sampling"
	}
	return "always"
}

// Identity is one declared counter identity: pure data, constructed
// once by Identities() and evaluated against every in-scope unit.
type Identity struct {
	// Name is the identity's stable report key.
	Name string
	// Doc says what microarchitectural assumption the identity encodes.
	Doc string
	// L, Rel, R assert "L Rel R".
	L   Expr
	Rel Relation
	R   Expr
	// Tol is the relative tolerance: the identity holds when the
	// relation's defect, normalized by max(|L|, |R|, 1), stays <= Tol.
	// Integer counter identities use 0 (exact); float derivations use a
	// few ulps' worth.
	Tol float64
	// Scope restricts which units the identity is defined over.
	Scope Scope
	// Guards lists expressions that must all be non-zero for the
	// identity to be evaluated (e.g. Eq. 1 denominators). A guarded-out
	// unit counts as skipped, never as a vacuous hold.
	Guards []Expr
}

// inScope reports whether the identity is defined over u.
func (id *Identity) inScope(u *Unit) bool {
	switch id.Scope {
	case VirtOnly:
		return u.Virt
	case NativeOnly:
		return !u.Virt
	case SamplingOnly:
		return u.Sampling
	}
	return true
}

// guarded reports whether all guard expressions are non-zero on u.
func (id *Identity) guarded(u *Unit) bool {
	for _, g := range id.Guards {
		if g.Eval(u) == 0 {
			return false
		}
	}
	return true
}

// residual returns the relation's normalized defect on u: 0 when the
// relation holds exactly, and the violation magnitude over
// max(|L|, |R|, 1) otherwise. The identity holds iff residual <= Tol.
func (id *Identity) residual(u *Unit) (l, r, res float64) {
	l, r = id.L.Eval(u), id.R.Eval(u)
	var defect float64
	switch id.Rel {
	case EQ:
		defect = math.Abs(l - r)
	case GE:
		defect = math.Max(0, r-l)
	case LE:
		defect = math.Max(0, l-r)
	}
	norm := math.Max(math.Max(math.Abs(l), math.Abs(r)), 1)
	return l, r, defect / norm
}

// Statement renders the identity's asserted relation ("L == R").
func (id *Identity) Statement() string {
	return id.L.String() + " " + string(id.Rel) + " " + id.R.String()
}

// Identities returns the declared identity registry. Every entry is an
// assumption the analysis code already relies on; a violation on any
// unit means either a simulator counter bug or a broken assumption —
// exactly the signal the adversarial sweeps hunt for.
func Identities() []Identity {
	dtlbWalkDuration := Sum(Ev("dtlb_load_misses.walk_duration"), Ev("dtlb_store_misses.walk_duration"))
	walksInitiated := Sum(Ev("dtlb_load_misses.miss_causes_a_walk"), Ev("dtlb_store_misses.miss_causes_a_walk"))
	walksCompleted := Sum(Ev("dtlb_load_misses.walk_completed"), Ev("dtlb_store_misses.walk_completed"))
	walksRetired := Sum(Ev("mem_uops_retired.stlb_miss_loads"), Ev("mem_uops_retired.stlb_miss_stores"))
	accesses := Sum(Ev("mem_uops_retired.all_loads"), Ev("mem_uops_retired.all_stores"))
	walkerLoads := Sum(Ev("page_walker_loads.dtlb_l1"), Ev("page_walker_loads.dtlb_l2"),
		Ev("page_walker_loads.dtlb_l3"), Ev("page_walker_loads.dtlb_memory"))
	eptWalkerLoads := Sum(Ev("page_walker_loads.ept_dtlb_l1"), Ev("page_walker_loads.ept_dtlb_l2"),
		Ev("page_walker_loads.ept_dtlb_l3"), Ev("page_walker_loads.ept_dtlb_memory"))

	return []Identity{
		{
			Name: "eq1_product",
			Doc:  "Equation 1: the four-factor decomposition multiplies back to WCPI",
			L:    Metric("eq1_product"), Rel: EQ, R: Metric("wcpi"),
			Tol: 1e-9,
			Guards: []Expr{Ev("inst_retired.any"), accesses, walksInitiated,
				Sum(walkerLoads, eptWalkerLoads)},
		},
		{
			Name: "walk_duration_split",
			Doc:  "walk_duration decomposes exactly into guest and EPT dimensions (EPT share zero natively)",
			L:    dtlbWalkDuration, Rel: EQ,
			R: Sum(Ev("dtlb_load_misses.walk_duration_guest"),
				Ev("dtlb_store_misses.walk_duration_guest"),
				Ev("ept_misses.walk_duration")),
		},
		{
			Name: "walks_initiated_ge_completed",
			Doc:  "a walk must be initiated before it completes (Table VI: Aborted >= 0)",
			L:    walksInitiated, Rel: GE, R: walksCompleted,
		},
		{
			Name: "walks_completed_ge_retired",
			Doc:  "every retired STLB-missing uop had a completed walk (Table VI: WrongPath >= 0)",
			L:    walksCompleted, Rel: GE, R: walksRetired,
		},
		{
			Name: "accesses_ge_stlb_misses",
			Doc:  "retired STLB misses are a subset of retired accesses",
			L:    accesses, Rel: GE, R: walksRetired,
		},
		{
			Name: "walker_loads_ge_completed",
			Doc:  "every completed walk loads at least its leaf entry",
			L:    Sum(walkerLoads, eptWalkerLoads), Rel: GE, R: walksCompleted,
		},
		{
			Name: "walk_duration_ge_completed",
			Doc:  "every completed walk costs at least one walker cycle",
			L:    dtlbWalkDuration, Rel: GE, R: walksCompleted,
		},
		{
			Name: "guest_duration_le_total",
			Doc:  "the guest-dimension share of walk_duration cannot exceed the total",
			L: Sum(Ev("dtlb_load_misses.walk_duration_guest"),
				Ev("dtlb_store_misses.walk_duration_guest")),
			Rel: LE, R: dtlbWalkDuration,
		},
		{
			Name: "stlb_hits_bound_misses",
			Doc:  "first-level TLB misses split into STLB hits and initiated walks; both are bounded by accesses plus walker traffic",
			L:    Sum(Ev("dtlb_load_misses.stlb_hit"), Ev("dtlb_store_misses.stlb_hit")), Rel: LE,
			R: Sum(accesses, walksInitiated),
		},
		{
			Name: "ept_initiated_ge_completed",
			Doc:  "an EPT walk must be initiated before it completes",
			L:    Ev("ept_misses.miss_causes_a_walk"), Rel: GE, R: Ev("ept_misses.walk_completed"),
			Scope: VirtOnly,
		},
		{
			Name: "ept_duration_le_total",
			Doc:  "EPT-walk cycles are a share of total walk_duration, never more",
			L:    Ev("ept_misses.walk_duration"), Rel: LE, R: dtlbWalkDuration,
			Scope: VirtOnly,
		},
		{
			Name: "native_ept_zero",
			Doc:  "native runs count nothing in the ept_* domain",
			L: Sum(Ev("ept_misses.miss_causes_a_walk"), Ev("ept_misses.walk_completed"),
				Ev("ept_misses.walk_duration"), Ev("ept_misses.walk_stlb_hit"),
				eptWalkerLoads, Ev("ept.violations")),
			Rel: EQ, R: Const(0),
			Scope: NativeOnly,
		},
		{
			Name: "sampler_ring_capacity",
			Doc:  "the sample ring never holds more records than its capacity",
			L:    Field("samples_drained"), Rel: LE, R: Field("sample_capacity"),
			Scope: SamplingOnly,
		},
		{
			Name: "sampler_no_lost_records",
			Doc:  "one drain after the region returns every captured record",
			L:    Field("samples_drained"), Rel: EQ, R: Field("samples_captured"),
			Scope: SamplingOnly,
		},
		{
			Name: "sampler_drops_only_when_full",
			Doc:  "records drop only when the ring is full: drops imply a full drain",
			L:    Mul(Field("samples_dropped"), Sub(Field("sample_capacity"), Field("samples_drained"))), Rel: EQ, R: Const(0),
			Scope: SamplingOnly,
		},
		{
			Name: "sampler_weight_conservation",
			Doc:  "drained plus dropped sample weights reconstruct the armed events' aggregate count to within one period per armed event",
			L:    Sum(Field("sample_weight"), Field("sample_dropped_weight"), Field("sample_slack")),
			Rel:  GE, R: Field("sample_events_total"),
			Scope:  SamplingOnly,
			Guards: []Expr{Field("sample_events_total")},
		},
		{
			Name: "sampler_weight_le_total",
			Doc:  "sample weights never overcount the armed events",
			L:    Sum(Field("sample_weight"), Field("sample_dropped_weight")), Rel: LE,
			R:     Field("sample_events_total"),
			Scope: SamplingOnly,
		},
	}
}
