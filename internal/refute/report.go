package refute

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// maxWorstSamples bounds how many violating units an identity's report
// entry lists verbatim (the counts are always totals).
const maxWorstSamples = 5

// IdentityReport is one identity's aggregate over a campaign.
type IdentityReport struct {
	// Name / Statement / Doc / Scope restate the declaration.
	Name      string `json:"name"`
	Statement string `json:"statement"`
	Doc       string `json:"doc"`
	Scope     string `json:"scope"`
	// Tol is the declared relative tolerance.
	Tol float64 `json:"tol"`
	// Checked / Skipped / Violations count units.
	Checked    int `json:"checked"`
	Skipped    int `json:"skipped"`
	Violations int `json:"violations"`
	// MaxResidual is the largest normalized defect seen across checked
	// units (violating or not); WorstUnit names where it occurred (ties
	// broken by unit name).
	MaxResidual float64 `json:"max_residual"`
	WorstUnit   string  `json:"worst_unit,omitempty"`
	// Worst lists up to maxWorstSamples violations, largest residual
	// first (ties broken by unit name).
	Worst []Violation `json:"worst,omitempty"`
}

// Holds reports whether the identity held on every checked unit.
func (r *IdentityReport) Holds() bool { return r.Violations == 0 }

// Report is the campaign-level refutation verdict: which identities
// held, which broke, and where. Built only from per-unit outcomes keyed
// by unit name, so serial and parallel campaigns render and marshal to
// byte-identical output.
type Report struct {
	// Identities is the per-identity aggregate, in registry order.
	Identities []IdentityReport `json:"identities"`
	// Units is the number of distinct campaign units checked.
	Units int `json:"units"`
	// TotalViolations sums violations across identities.
	TotalViolations int `json:"total_violations"`
}

// Report aggregates the checker's accumulated outcomes.
func (c *Checker) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()

	names := make([]string, 0, len(c.units))
	for name := range c.units {
		names = append(names, name)
	}
	sort.Strings(names)

	rep := &Report{Units: len(names)}
	for i := range c.ids {
		id := &c.ids[i]
		ir := IdentityReport{
			Name:      id.Name,
			Statement: id.Statement(),
			Doc:       id.Doc,
			Scope:     id.Scope.String(),
			Tol:       id.Tol,
		}
		for _, name := range names {
			uo := c.units[name]
			er := uo.results[i]
			switch er.status {
			case statusSkipped:
				ir.Skipped++
				continue
			case statusViolated:
				ir.Violations++
				ir.Worst = append(ir.Worst, Violation{
					Identity: id.Name, Unit: name,
					L: er.l, R: er.r, Residual: er.residual,
					StartCycle: uo.start, EndCycle: uo.end,
				})
				fallthrough
			case statusHeld:
				ir.Checked++
				if er.residual > ir.MaxResidual || ir.WorstUnit == "" {
					ir.MaxResidual, ir.WorstUnit = er.residual, name
				}
			}
		}
		sort.SliceStable(ir.Worst, func(a, b int) bool {
			if ir.Worst[a].Residual != ir.Worst[b].Residual {
				return ir.Worst[a].Residual > ir.Worst[b].Residual
			}
			return ir.Worst[a].Unit < ir.Worst[b].Unit
		})
		if len(ir.Worst) > maxWorstSamples {
			ir.Worst = ir.Worst[:maxWorstSamples]
		}
		if ir.Checked == 0 {
			ir.WorstUnit = ""
		}
		rep.TotalViolations += ir.Violations
		rep.Identities = append(rep.Identities, ir)
	}
	return rep
}

// JSON marshals the report deterministically (two-space indent, fixed
// field and slice order).
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// The report contains only plain values; Marshal cannot fail.
		panic(err)
	}
	return append(b, '\n')
}

// Render returns the human-readable verdict table: one line per
// identity (HOLDS / BREAKS / skipped), then the worst violations.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "refute: %d identities over %d units — %d violation(s)\n",
		len(r.Identities), r.Units, r.TotalViolations)
	for i := range r.Identities {
		ir := &r.Identities[i]
		verdict := "HOLDS "
		switch {
		case ir.Checked == 0:
			verdict = "skip  "
		case !ir.Holds():
			verdict = "BREAKS"
		}
		fmt.Fprintf(&b, "  %s %-28s checked=%-4d skipped=%-4d violated=%-4d max_residual=%.3g",
			verdict, ir.Name, ir.Checked, ir.Skipped, ir.Violations, ir.MaxResidual)
		if ir.WorstUnit != "" && ir.MaxResidual > 0 {
			fmt.Fprintf(&b, " worst=%q", ir.WorstUnit)
		}
		b.WriteByte('\n')
	}
	for i := range r.Identities {
		ir := &r.Identities[i]
		for _, v := range ir.Worst {
			fmt.Fprintf(&b, "  ! %s on %q: %s (l=%g r=%g residual=%g, cycles %d-%d)\n",
				v.Identity, v.Unit, ir.Statement, v.L, v.R, v.Residual, v.StartCycle, v.EndCycle)
		}
	}
	return b.String()
}

// MergeReports folds per-variant reports into one aggregate with the
// same identity order. Counts add; max residuals take the max (ties on
// worst unit broken by name); worst lists re-merge under the same
// ordering and cap. All inputs must share one identity registry.
func MergeReports(rs ...*Report) *Report {
	out := &Report{}
	for _, r := range rs {
		if r == nil {
			continue
		}
		if out.Identities == nil {
			cp := make([]IdentityReport, len(r.Identities))
			copy(cp, r.Identities)
			for i := range cp {
				cp[i].Worst = append([]Violation(nil), cp[i].Worst...)
			}
			out.Identities = cp
			out.Units = r.Units
			out.TotalViolations = r.TotalViolations
			continue
		}
		if len(r.Identities) != len(out.Identities) {
			panic(fmt.Sprintf("refute: merging report with %d identities into one with %d",
				len(r.Identities), len(out.Identities)))
		}
		out.Units += r.Units
		out.TotalViolations += r.TotalViolations
		for i := range r.Identities {
			a, b := &out.Identities[i], &r.Identities[i]
			a.Checked += b.Checked
			a.Skipped += b.Skipped
			a.Violations += b.Violations
			if b.MaxResidual > a.MaxResidual ||
				(b.MaxResidual == a.MaxResidual && b.WorstUnit != "" &&
					(a.WorstUnit == "" || b.WorstUnit < a.WorstUnit)) {
				a.MaxResidual, a.WorstUnit = b.MaxResidual, b.WorstUnit
			}
			a.Worst = append(a.Worst, b.Worst...)
			sort.SliceStable(a.Worst, func(x, y int) bool {
				if a.Worst[x].Residual != a.Worst[y].Residual {
					return a.Worst[x].Residual > a.Worst[y].Residual
				}
				return a.Worst[x].Unit < a.Worst[y].Unit
			})
			if len(a.Worst) > maxWorstSamples {
				a.Worst = a.Worst[:maxWorstSamples]
			}
		}
	}
	return out
}
