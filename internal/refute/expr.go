// Package refute treats the repo's counter identities the way
// CounterPoint treats microarchitectural assumptions: as falsifiable
// observables. Every identity the analysis code relies on — the
// Equation 1 multiplicative WCPI decomposition, the
// walk_duration = guest + ept split, the Table VI outcome orderings,
// the sampler's ring-overflow accounting — is declared once as data
// (name, expression over perf events and derived metrics, relation,
// tolerance, scope) and evaluated online against every campaign unit's
// measured counters. A violation is pinned to the unit's measured
// cycle range on a dedicated `refute` timeline track and aggregated
// into a deterministic report that is byte-identical between serial
// and parallel campaign schedules.
package refute

import (
	"fmt"
	"strings"

	"atscale/internal/perf"
)

// opKind discriminates expression nodes.
type opKind uint8

const (
	opEvent opKind = iota
	opField
	opMetric
	opConst
	opSum
	opSub
	opMul
)

// Expr is one side of an identity: a small arithmetic expression over
// perf events, derived metrics, and per-unit observability scalars.
// Exprs are plain data built by the constructors below; Eval is a pure
// function of the Unit, so evaluating the same unit twice (or on two
// campaign schedules) yields bit-identical float64s.
type Expr struct {
	op   opKind
	ev   perf.Event
	name string // event / field / metric spelling, for rendering
	val  float64
	args []Expr
}

// Ev references a perf event by its perf-tool spelling. Unknown names
// panic at registry-construction time — and fail `atlint` before that:
// the eventname analyzer vets every constant string passed to Ev
// against the live event table, so a typo'd identity is a lint error,
// not a vacuously-holding check.
func Ev(name string) Expr {
	e, err := perf.ByName(name)
	if err != nil {
		panic(fmt.Sprintf("refute: identity references %v", err))
	}
	return Expr{op: opEvent, ev: e, name: name}
}

// metricTable maps derived-metric names to accessors over the unit's
// precomputed perf.Metrics. Kept deliberately small: identities should
// mostly relate raw events; metrics appear only where the identity *is*
// about the derivation (the Eq. 1 product).
var metricTable = map[string]func(*Unit) float64{
	"wcpi":        func(u *Unit) float64 { return u.Metrics.WCPI },
	"eq1_product": func(u *Unit) float64 { return u.Metrics.Eq1.Product() },
}

// Metric references a derived metric by name ("wcpi", "eq1_product").
// Unknown names panic at registry-construction time.
func Metric(name string) Expr {
	if _, ok := metricTable[name]; !ok {
		panic(fmt.Sprintf("refute: identity references unknown metric %q", name))
	}
	return Expr{op: opMetric, name: name}
}

// fieldTable maps observability-scalar names to Unit fields. These
// cover the state that is not a PMU counter but participates in
// accounting identities: the sample ring's capacity and drop counts,
// and the aggregate event mass the drained samples stand for.
var fieldTable = map[string]func(*Unit) float64{
	"samples_drained":       func(u *Unit) float64 { return float64(u.SamplesDrained) },
	"samples_captured":      func(u *Unit) float64 { return float64(u.SamplesCaptured) },
	"samples_dropped":       func(u *Unit) float64 { return float64(u.SamplesDropped) },
	"sample_capacity":       func(u *Unit) float64 { return float64(u.SampleCapacity) },
	"sample_weight":         func(u *Unit) float64 { return float64(u.SampleWeight) },
	"sample_dropped_weight": func(u *Unit) float64 { return float64(u.SampleDroppedWeight) },
	"sample_events_total":   func(u *Unit) float64 { return float64(u.SampleEventsTotal) },
	"sample_slack":          func(u *Unit) float64 { return float64(u.SampleSlack) },
}

// Field references a per-unit observability scalar by name. Unknown
// names panic at registry-construction time.
func Field(name string) Expr {
	if _, ok := fieldTable[name]; !ok {
		panic(fmt.Sprintf("refute: identity references unknown field %q", name))
	}
	return Expr{op: opField, name: name}
}

// Const is a numeric literal.
func Const(v float64) Expr { return Expr{op: opConst, val: v} }

// Sum adds its operands.
func Sum(xs ...Expr) Expr { return Expr{op: opSum, args: xs} }

// Sub subtracts b from a.
func Sub(a, b Expr) Expr { return Expr{op: opSub, args: []Expr{a, b}} }

// Mul multiplies its operands.
func Mul(xs ...Expr) Expr { return Expr{op: opMul, args: xs} }

// Eval evaluates the expression against one unit's data.
func (x Expr) Eval(u *Unit) float64 {
	switch x.op {
	case opEvent:
		return float64(u.Counters.Get(x.ev))
	case opField:
		return fieldTable[x.name](u)
	case opMetric:
		return metricTable[x.name](u)
	case opConst:
		return x.val
	case opSum:
		var s float64
		for _, a := range x.args {
			s += a.Eval(u)
		}
		return s
	case opSub:
		return x.args[0].Eval(u) - x.args[1].Eval(u)
	case opMul:
		s := 1.0
		for _, a := range x.args {
			s *= a.Eval(u)
		}
		return s
	}
	return 0
}

// String renders the expression deterministically, in identity-report
// spelling: event names verbatim, fields in angle brackets, metrics in
// square brackets.
func (x Expr) String() string {
	switch x.op {
	case opEvent:
		return x.name
	case opField:
		return "<" + x.name + ">"
	case opMetric:
		return "[" + x.name + "]"
	case opConst:
		return fmt.Sprintf("%g", x.val)
	case opSum:
		return "(" + joinExprs(x.args, " + ") + ")"
	case opSub:
		return "(" + x.args[0].String() + " - " + x.args[1].String() + ")"
	case opMul:
		return "(" + joinExprs(x.args, " * ") + ")"
	}
	return "?"
}

func joinExprs(xs []Expr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, sep)
}
