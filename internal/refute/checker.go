package refute

import (
	"fmt"
	"sync"

	"atscale/internal/telemetry"
)

// status is one identity's outcome on one unit.
type status uint8

const (
	statusSkipped status = iota
	statusHeld
	statusViolated
)

// evalResult is one (identity, unit) evaluation.
type evalResult struct {
	status   status
	l, r     float64
	residual float64
}

// unitOutcome is one unit's full evaluation row, plus the cycle range
// violations were pinned to.
type unitOutcome struct {
	start, end uint64
	results    []evalResult // indexed like Checker.ids
}

// Violation is one identity broken on one unit.
type Violation struct {
	// Identity is the broken identity's name.
	Identity string `json:"identity"`
	// Unit names the violating campaign unit.
	Unit string `json:"unit"`
	// L and R are the two sides' evaluated values.
	L float64 `json:"l"`
	R float64 `json:"r"`
	// Residual is the normalized defect (see Identity.Tol).
	Residual float64 `json:"residual"`
	// StartCycle / EndCycle is the measured-region cycle range the
	// violation is pinned to on the unit's refute timeline track.
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
}

// Outcome summarizes one unit's check.
type Outcome struct {
	// Checked counts identities evaluated (held or violated); Skipped
	// counts identities out of scope or guarded out.
	Checked, Skipped int
	// Violations lists the identities the unit broke.
	Violations []Violation
}

// Checker evaluates the identity registry online, one campaign unit at
// a time, and accumulates per-unit outcomes for the deterministic
// report. Safe for concurrent use from campaign workers; outcomes are
// keyed by unit name, so the report is independent of completion order.
type Checker struct {
	ids []Identity

	mu    sync.Mutex
	units map[string]*unitOutcome
}

// NewChecker builds a checker over the given identities; with none
// given it checks the full default registry.
func NewChecker(ids ...Identity) *Checker {
	if len(ids) == 0 {
		ids = Identities()
	}
	return &Checker{ids: ids, units: make(map[string]*unitOutcome)}
}

// CheckUnit evaluates every registered identity against u, records the
// outcome for the report, and — when the unit is traced — emits the
// dedicated `refute` track on proc: one pinned slice per violation
// spanning the measured region's cycle range, plus a running
// identities_violated counter sample at the region boundary. proc may
// be nil (untraced campaigns); the track hooks are nil-safe.
func (c *Checker) CheckUnit(u Unit, proc *telemetry.Process) Outcome {
	var out Outcome
	uo := &unitOutcome{start: u.StartCycle, end: u.EndCycle, results: make([]evalResult, len(c.ids))}
	trk := proc.Track("refute")
	trk.Sync(u.StartCycle)
	for i := range c.ids {
		id := &c.ids[i]
		if !id.inScope(&u) || !id.guarded(&u) {
			out.Skipped++
			continue
		}
		l, r, res := id.residual(&u)
		er := evalResult{status: statusHeld, l: l, r: r, residual: res}
		out.Checked++
		if res > id.Tol {
			er.status = statusViolated
			v := Violation{
				Identity: id.Name, Unit: u.Name,
				L: l, R: r, Residual: res,
				StartCycle: u.StartCycle, EndCycle: u.EndCycle,
			}
			out.Violations = append(out.Violations, v)
			trk.Pin("violated: "+id.Name, u.StartCycle, u.EndCycle,
				"detail", fmt.Sprintf("%s; l=%g r=%g residual=%g", id.Statement(), l, r, res))
		}
		uo.results[i] = er
	}
	trk.Sync(u.EndCycle)
	trk.Counter("identities_violated", float64(len(out.Violations)))
	trk.Counter("identities_checked", float64(out.Checked))

	c.mu.Lock()
	c.units[u.Name] = uo
	c.mu.Unlock()
	return out
}

// Absorb merges other's accumulated unit outcomes into c. Both checkers
// must run the same identity registry (same length and order); campaign
// code uses it to fold per-variant checkers into a session-wide one.
// Unit names must be globally unique — the adversarial experiment tags
// each variant's units for exactly that reason.
func (c *Checker) Absorb(other *Checker) {
	if other == nil || other == c {
		return
	}
	if len(other.ids) != len(c.ids) {
		panic(fmt.Sprintf("refute: absorbing checker with %d identities into one with %d",
			len(other.ids), len(c.ids)))
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	//atlint:ordered map-to-map copy; the destination is re-sorted at Report time
	for name, uo := range other.units {
		c.units[name] = uo
	}
}
